// Package shard routes solve traffic across replicas of the solve
// service so signature-equivalent requests land on the replica whose
// memo cache already holds the entry.
//
// The routing key is the scaled-rounded instance signature
// (numeric.Key) — the same identity the memo cache keys on — mixed with
// the resolved solver knobs, so two requests that would share a cache
// entry hash to the same point of a consistent-hash ring, regardless of
// which client sent them or in what order. Replicas join the ring as a
// configurable number of virtual nodes, which keeps the key space
// spread even at small replica counts and moves only ~1/N of the keys
// when a replica is added or removed.
//
// The router health-checks its replicas and retries a failed forward on
// the next distinct replica of the ring sequence with backoff; a
// fallback solve is merely a cold-cache solve — answers are
// bit-identical on every replica by the solver's determinism contract,
// so rerouting is always safe.
package shard

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node: a position on the hash circle owned by
// a replica.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring is an immutable consistent-hash ring over replica indices.
type Ring struct {
	points   []ringPoint
	replicas int
}

// DefaultVNodes is the virtual-node count per replica when the caller
// does not set one: enough to keep the per-replica key share within a
// few percent of 1/N at the replica counts a single host fronts.
const DefaultVNodes = 64

// NewRing builds a ring of vnodes virtual nodes per replica (<= 0
// selects DefaultVNodes). Replica identity is positional: point i of
// the ring maps to index i of the replica list the caller keeps.
func NewRing(replicas int, vnodes int) (*Ring, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("shard: ring needs at least one replica, got %d", replicas)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, replicas*vnodes), replicas: replicas}
	for i := 0; i < replicas; i++ {
		for v := 0; v < vnodes; v++ {
			// Independent point per (replica, vnode) pair; the double mix
			// decorrelates adjacent vnode indices.
			h := mix64(mix64(uint64(i)*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d) + uint64(v))
			r.points = append(r.points, ringPoint{hash: h, replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Replicas reports the replica count the ring was built over.
func (r *Ring) Replicas() int { return r.replicas }

// Lookup returns the replica owning key: the first point at or after
// key on the circle.
func (r *Ring) Lookup(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// Sequence returns every replica in ring order starting at key's owner,
// each exactly once — the fallback order for retries. The first element
// is Lookup(key).
func (r *Ring) Sequence(key uint64) []int {
	seq := make([]int, 0, r.replicas)
	seen := make([]bool, r.replicas)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for off := 0; off < len(r.points) && len(seq) < r.replicas; off++ {
		p := r.points[(start+off)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, p.replica)
		}
	}
	return seq
}

// mix64 is the SplitMix64 finalizer (full-avalanche 64-bit
// permutation), the same mixer the numeric signatures use.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
