package scratch

import "testing"

func TestArenaZeroedAndDisjoint(t *testing.T) {
	var a Arena
	x := a.Ints(8)
	y := a.Ints(8)
	if len(x) != 8 || len(y) != 8 {
		t.Fatalf("lengths %d, %d; want 8, 8", len(x), len(y))
	}
	for i := range x {
		x[i] = i + 1
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %d after writing x; slices overlap or are not zeroed", i, v)
		}
	}
	// Full-slice-expression capacity: appending to x must not step into y.
	x = append(x, 99)
	if y[0] != 0 {
		t.Fatal("append to x clobbered y; take must cap its subslices")
	}
}

func TestArenaReuseAfterReset(t *testing.T) {
	var a Arena
	x := a.Ints(4)
	x[0] = 7
	a.Reset()
	z := a.Ints(4)
	if z[0] != 0 {
		t.Fatalf("slice not re-zeroed after Reset: %d", z[0])
	}
	if &x[0] != &z[0] {
		t.Error("Reset did not reuse the slab backing; arena never stops allocating")
	}
}

func TestArenaGrowthKeepsOldSlicesValid(t *testing.T) {
	var a Arena
	x := a.Ints(1000)
	for i := range x {
		x[i] = i
	}
	// Exceed the first slab so take allocates a bigger backing.
	y := a.Ints(5000)
	y[0] = -1
	for i := range x {
		if x[i] != i {
			t.Fatalf("x[%d] = %d after growth; old slices must stay valid", i, x[i])
		}
	}
}

func TestArenaNilFallback(t *testing.T) {
	var a *Arena
	if got := len(a.Ints(3)); got != 3 {
		t.Errorf("nil Ints(3) length %d", got)
	}
	if got := len(a.Int16s(3)); got != 3 {
		t.Errorf("nil Int16s(3) length %d", got)
	}
	if got := len(a.Bools(3)); got != 3 {
		t.Errorf("nil Bools(3) length %d", got)
	}
	if got := len(a.Fxs(3)); got != 3 {
		t.Errorf("nil Fxs(3) length %d", got)
	}
	if got := len(a.Float64s(3)); got != 3 {
		t.Errorf("nil Float64s(3) length %d", got)
	}
}

func TestArenaTypedSlabsIndependent(t *testing.T) {
	var a Arena
	i16 := a.Int16s(4)
	bo := a.Bools(4)
	fx := a.Fxs(4)
	f64 := a.Float64s(4)
	i16[0], bo[0], fx[0], f64[0] = 1, true, 2, 3.5
	in := a.Ints(4)
	if in[0] != 0 {
		t.Error("typed slabs share memory")
	}
	a.Reset()
	if got := a.Int16s(4); got[0] != 0 {
		t.Error("Int16s not re-zeroed after Reset")
	}
}
