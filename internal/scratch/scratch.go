// Package scratch provides a reusable typed arena for the per-solve
// scratch buffers of the EPTAS pipeline. A binary-search solve runs the
// per-guess pipeline dozens of times on the same instance (speculative
// guesses, ladder rungs, repair retries), and each run used to allocate
// its working arrays — placer load vectors, configuration-DP residual
// buffers — from the heap only to drop them microseconds later. An
// Arena hands out slices from growable slabs and is reset wholesale
// between runs, so steady-state pipeline runs stop allocating.
//
// An Arena is single-goroutine: the engine hands each concurrent
// pipeline run its own arena from a pool. Slices taken from an arena
// are valid until the arena is reset; nothing retained beyond the run
// (plans, schedules, cached results) may live in arena memory.
package scratch

import "repro/internal/numeric"

// slab hands out zeroed subslices of one element type. When the
// current backing array is exhausted a bigger one is allocated; slices
// already handed out keep the old backing alive, so growth never
// invalidates them.
type slab[T any] struct {
	buf []T
	off int
}

func (s *slab[T]) take(n int) []T {
	if s.off+n > len(s.buf) {
		size := 2 * (s.off + n)
		if size < 1024 {
			size = 1024
		}
		s.buf = make([]T, size)
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out)
	return out
}

func (s *slab[T]) reset() { s.off = 0 }

// Arena is a bundle of typed slabs covering the pipeline's scratch
// needs. The zero value is ready to use.
type Arena struct {
	ints  slab[int]
	i16s  slab[int16]
	bools slab[bool]
	fxs   slab[numeric.Fx]
	f64s  slab[float64]
}

// Every getter tolerates a nil receiver by falling back to a plain
// allocation, so optional-arena call sites need no branching.

// Ints returns a zeroed []int of length n from the arena.
func (a *Arena) Ints(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.take(n)
}

// Int16s returns a zeroed []int16 of length n from the arena.
func (a *Arena) Int16s(n int) []int16 {
	if a == nil {
		return make([]int16, n)
	}
	return a.i16s.take(n)
}

// Bools returns a zeroed []bool of length n from the arena.
func (a *Arena) Bools(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return a.bools.take(n)
}

// Fxs returns a zeroed []numeric.Fx of length n from the arena.
func (a *Arena) Fxs(n int) []numeric.Fx {
	if a == nil {
		return make([]numeric.Fx, n)
	}
	return a.fxs.take(n)
}

// Float64s returns a zeroed []float64 of length n from the arena.
func (a *Arena) Float64s(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	return a.f64s.take(n)
}

// Reset makes every slab's memory available again. Slices taken before
// the reset must no longer be used.
func (a *Arena) Reset() {
	a.ints.reset()
	a.i16s.reset()
	a.bools.reset()
	a.fxs.reset()
	a.f64s.reset()
}
