// Package lp implements a two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {<=, >=, =} b_i   for every constraint i
//	            x >= 0
//
// It is the linear-programming substrate below the branch-and-bound MILP
// solver in package milp, which together replace the Lenstra/Kannan integer
// programming oracle used by the paper. The implementation is a dense
// tableau simplex with Dantzig pricing and a Bland's-rule fallback that
// guarantees termination on degenerate problems.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status is the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic feasible solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded below.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was exhausted.
	StatusIterLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Sense is the relation of a constraint row.
type Sense int

const (
	// LE is a_i·x <= b_i.
	LE Sense = iota
	// GE is a_i·x >= b_i.
	GE
	// EQ is a_i·x = b_i.
	EQ
)

// Term is one coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is one row of the program.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program under construction. The zero value is an
// empty problem; add variables before referencing them in constraints.
type Problem struct {
	obj  []float64
	rows []Constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows returns the number of constraints added so far.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddVar adds a non-negative variable with the given objective coefficient
// and returns its index.
func (p *Problem) AddVar(obj float64) int {
	p.obj = append(p.obj, obj)
	return len(p.obj) - 1
}

// SetObj changes the objective coefficient of variable v.
func (p *Problem) SetObj(v int, obj float64) { p.obj[v] = obj }

// AddConstraint adds a row and returns its index. Terms referencing
// variables that do not exist cause Solve to fail.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	cp := make([]Term, len(terms))
	copy(cp, terms)
	p.rows = append(p.rows, Constraint{Terms: cp, Sense: sense, RHS: rhs})
	return len(p.rows) - 1
}

// Clone returns an independent copy of the problem.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		obj:  make([]float64, len(p.obj)),
		rows: make([]Constraint, len(p.rows)),
	}
	copy(q.obj, p.obj)
	for i, r := range p.rows {
		terms := make([]Term, len(r.Terms))
		copy(terms, r.Terms)
		q.rows[i] = Constraint{Terms: terms, Sense: r.Sense, RHS: r.RHS}
	}
	return q
}

// CheckFeasible reports whether x satisfies every constraint of the
// problem (and non-negativity) within tol.
func (p *Problem) CheckFeasible(x []float64, tol float64) bool {
	if len(x) != len(p.obj) {
		return false
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for _, r := range p.rows {
		act := 0.0
		for _, t := range r.Terms {
			act += t.Coef * x[t.Var]
		}
		switch r.Sense {
		case LE:
			if act > r.RHS+tol {
				return false
			}
		case GE:
			if act < r.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(act-r.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// Objective evaluates the objective at x.
func (p *Problem) Objective(x []float64) float64 {
	obj := 0.0
	for i, c := range p.obj {
		obj += c * x[i]
	}
	return obj
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	// X holds the variable values when Status is StatusOptimal.
	X []float64
	// Obj is the objective value when Status is StatusOptimal.
	Obj float64
	// Iters is the total number of simplex pivots performed.
	Iters int
}

// Options tunes the solver.
type Options struct {
	// MaxIters bounds total pivots across both phases. Zero means the
	// default of 200000.
	MaxIters int
	// Progress, when non-nil, is invoked once per simplex pivot with the
	// pivot count so far (across both phases). A non-nil return aborts
	// the solve and is surfaced as Solve's error. The branch-and-bound
	// layer forwards it so the oracle portfolio's race clock ticks inside
	// a node's LP solve, not just between nodes.
	Progress func(iters int) error
}

const (
	pivotEps = 1e-9
	feasEps  = 1e-7
)

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: constraint references unknown variable")

// Solve runs two-phase simplex and returns the result. The problem is not
// modified.
func (p *Problem) Solve(opt Options) (Result, error) {
	maxIters := opt.MaxIters
	if maxIters <= 0 {
		maxIters = 200000
	}
	n := len(p.obj)
	m := len(p.rows)
	for _, r := range p.rows {
		for _, t := range r.Terms {
			if t.Var < 0 || t.Var >= n {
				return Result{}, ErrBadProblem
			}
		}
	}

	// Column layout: [structural 0..n) | slack/surplus | artificial].
	// Every row gets either a slack (LE), a surplus+artificial (GE) or an
	// artificial (EQ); rows are normalized to non-negative RHS first.
	type rowAux struct {
		slack, art int // column indices or -1
	}
	aux := make([]rowAux, m)
	ncols := n
	// Dense matrix built row by row.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i, r := range p.rows {
		row := make([]float64, n)
		for _, t := range r.Terms {
			row[t.Var] += t.Coef
		}
		rhs := r.RHS
		sense := r.Sense
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		a[i] = row
		b[i] = rhs
		aux[i] = rowAux{slack: -1, art: -1}
		switch sense {
		case LE:
			aux[i].slack = ncols
			ncols++
		case GE:
			aux[i].slack = ncols
			ncols++
			aux[i].art = ncols
			ncols++
		case EQ:
			aux[i].art = ncols
			ncols++
		}
	}

	// Rebuild senses after normalization for slack signs.
	slackSign := make([]float64, m)
	hasArt := make([]bool, m)
	for i, r := range p.rows {
		sense := r.Sense
		if r.RHS < 0 {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			slackSign[i] = 1
		case GE:
			slackSign[i] = -1
			hasArt[i] = true
		case EQ:
			slackSign[i] = 0
			hasArt[i] = true
		}
	}

	// Full tableau: m rows x ncols columns plus RHS.
	t := &tableau{
		m: m, n: ncols, nStruct: n,
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: make([]int, m),
	}
	for i := 0; i < m; i++ {
		row := make([]float64, ncols)
		copy(row, a[i])
		if aux[i].slack >= 0 {
			row[aux[i].slack] = slackSign[i]
		}
		if aux[i].art >= 0 {
			row[aux[i].art] = 1
		}
		t.a[i] = row
		t.b[i] = b[i]
		if aux[i].art >= 0 {
			t.basis[i] = aux[i].art
		} else {
			t.basis[i] = aux[i].slack
		}
	}

	isArt := make([]bool, ncols)
	for i := 0; i < m; i++ {
		if aux[i].art >= 0 {
			isArt[aux[i].art] = true
		}
	}

	itersLeft := maxIters
	totalIters := 0

	// Phase I: minimize the sum of artificial variables.
	needPhase1 := false
	for i := 0; i < m; i++ {
		if hasArt[i] {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		c1 := make([]float64, ncols)
		for j := 0; j < ncols; j++ {
			if isArt[j] {
				c1[j] = 1
			}
		}
		status, iters, err := t.optimize(c1, itersLeft, opt.Progress, totalIters)
		totalIters += iters
		itersLeft -= iters
		if err != nil {
			return Result{Iters: totalIters}, err
		}
		if status == StatusIterLimit {
			return Result{Status: StatusIterLimit, Iters: totalIters}, nil
		}
		// Phase-I objective value = sum of artificials.
		sum := 0.0
		for i := 0; i < m; i++ {
			if isArt[t.basis[i]] {
				sum += t.b[i]
			}
		}
		if sum > feasEps {
			return Result{Status: StatusInfeasible, Iters: totalIters}, nil
		}
		// Drive remaining artificials out of the basis where possible.
		t.evictArtificials(isArt)
	}

	// Phase II: original objective over non-artificial columns.
	c2 := make([]float64, ncols)
	copy(c2, p.obj)
	t.banned = isArt
	status, iters, err := t.optimize(c2, itersLeft, opt.Progress, totalIters)
	totalIters += iters
	if err != nil {
		return Result{Iters: totalIters}, err
	}
	if status == StatusIterLimit {
		return Result{Status: StatusIterLimit, Iters: totalIters}, nil
	}
	if status == StatusUnbounded {
		return Result{Status: StatusUnbounded, Iters: totalIters}, nil
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if t.basis[i] < n {
			x[t.basis[i]] = t.b[i]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}
	return Result{Status: StatusOptimal, X: x, Obj: obj, Iters: totalIters}, nil
}

// tableau is the dense simplex working state.
type tableau struct {
	m, n    int
	nStruct int
	a       [][]float64
	b       []float64
	basis   []int
	banned  []bool // columns that may not enter (artificials in phase II)
}

// optimize runs primal simplex minimizing c over the current tableau.
// It returns the terminal status and the number of pivots performed.
// progress (may be nil) is invoked once per pivot with base plus the
// pivots performed so far; a non-nil return aborts the phase.
func (t *tableau) optimize(c []float64, maxIters int, progress func(int) error, base int) (Status, int, error) {
	// Reduced costs are recomputed per iteration from the basis; for the
	// dense tableau we maintain the objective row explicitly.
	z := make([]float64, t.n)
	copy(z, c)
	zb := 0.0
	// Price out the current basis.
	for i := 0; i < t.m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			z[j] -= cb * t.a[i][j]
		}
		zb -= cb * t.b[i]
	}

	iters := 0
	degenerate := 0
	useBland := false
	for {
		if iters >= maxIters {
			return StatusIterLimit, iters, nil
		}
		// Entering column.
		enter := -1
		if useBland {
			for j := 0; j < t.n; j++ {
				if (t.banned == nil || !t.banned[j]) && z[j] < -pivotEps {
					enter = j
					break
				}
			}
		} else {
			best := -pivotEps
			for j := 0; j < t.n; j++ {
				if (t.banned == nil || !t.banned[j]) && z[j] < best {
					best = z[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return StatusOptimal, iters, nil
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij > pivotEps {
				ratio := t.b[i] / aij
				if ratio < bestRatio-pivotEps ||
					(ratio < bestRatio+pivotEps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return StatusUnbounded, iters, nil
		}
		if bestRatio < pivotEps {
			degenerate++
			if degenerate > 2*(t.m+t.n) {
				useBland = true
			}
		} else {
			degenerate = 0
		}
		t.pivot(leave, enter, z, &zb)
		iters++
		if progress != nil {
			if err := progress(base + iters); err != nil {
				return 0, iters, err
			}
		}
	}
}

// pivot performs a single pivot on (row, col) and updates the objective
// row z and objective constant zb.
func (t *tableau) pivot(row, col int, z []float64, zb *float64) {
	piv := t.a[row][col]
	inv := 1.0 / piv
	arow := t.a[row]
	for j := 0; j < t.n; j++ {
		arow[j] *= inv
	}
	t.b[row] *= inv
	arow[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ai := t.a[i]
		for j := 0; j < t.n; j++ {
			ai[j] -= f * arow[j]
		}
		ai[col] = 0 // exact
		t.b[i] -= f * t.b[row]
		if t.b[i] < 0 && t.b[i] > -1e-11 {
			t.b[i] = 0
		}
	}
	f := z[col]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			z[j] -= f * arow[j]
		}
		z[col] = 0
		*zb -= f * t.b[row]
	}
	t.basis[row] = col
}

// evictArtificials pivots basic artificial variables (at value zero after
// a successful phase I) out of the basis when a non-artificial column with
// a nonzero coefficient exists in their row.
func (t *tableau) evictArtificials(isArt []bool) {
	z := make([]float64, t.n) // dummy objective row for pivoting
	zb := 0.0
	for i := 0; i < t.m; i++ {
		if !isArt[t.basis[i]] {
			continue
		}
		for j := 0; j < t.n; j++ {
			if !isArt[j] && math.Abs(t.a[i][j]) > 1e-7 {
				t.pivot(i, j, z, &zb)
				break
			}
		}
		// If no pivot column exists the row is redundant; the artificial
		// stays basic at value zero, which is harmless because phase II
		// bans artificial columns from entering.
	}
}
