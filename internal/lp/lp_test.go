package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-6

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSimpleMaximization(t *testing.T) {
	// max x+y s.t. x<=2, y<=3, x+y<=4  => min -(x+y) = -4.
	p := NewProblem()
	x := p.AddVar(-1)
	y := p.AddVar(-1)
	p.AddConstraint([]Term{{x, 1}}, LE, 2)
	p.AddConstraint([]Term{{y, 1}}, LE, 3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj+4) > tol {
		t.Errorf("obj = %g, want -4", res.Obj)
	}
	if math.Abs(res.X[x]+res.X[y]-4) > tol {
		t.Errorf("x+y = %g, want 4", res.X[x]+res.X[y])
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x+3y s.t. x+y=10, x>=3, y>=2 => x=8,y=2, obj=22.
	p := NewProblem()
	x := p.AddVar(2)
	y := p.AddVar(3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint([]Term{{x, 1}}, GE, 3)
	p.AddConstraint([]Term{{y, 1}}, GE, 2)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-22) > tol {
		t.Errorf("obj = %g, want 22", res.Obj)
	}
	if math.Abs(res.X[x]-8) > tol || math.Abs(res.X[y]-2) > tol {
		t.Errorf("x,y = %g,%g want 8,2", res.X[x], res.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1)
	p.AddConstraint([]Term{{x, 1}}, GE, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 3)
	res := solveOK(t, p)
	if res.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1) // min -x, x >= 0, unbounded
	p.AddConstraint([]Term{{x, 1}}, GE, 0)
	res := solveOK(t, p)
	if res.Status != StatusUnbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with min x+y => y >= x+2, best x=0,y=2.
	p := NewProblem()
	x := p.AddVar(1)
	y := p.AddVar(1)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, -2)
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-2) > tol {
		t.Errorf("obj = %g, want 2", res.Obj)
	}
}

func TestNegativeRHSEquality(t *testing.T) {
	// -x = -3 => x = 3.
	p := NewProblem()
	x := p.AddVar(1)
	p.AddConstraint([]Term{{x, -1}}, EQ, -3)
	res := solveOK(t, p)
	if res.Status != StatusOptimal || math.Abs(res.X[x]-3) > tol {
		t.Errorf("status=%v x=%v", res.Status, res.X)
	}
}

func TestDegenerateKleeMintyish(t *testing.T) {
	// A problem with heavy degeneracy; must terminate and be optimal.
	p := NewProblem()
	n := 6
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar(-1)
	}
	for i := range vars {
		p.AddConstraint([]Term{{vars[i], 1}}, LE, 0) // all pinned to 0
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal || math.Abs(res.Obj) > tol {
		t.Errorf("status=%v obj=%g", res.Status, res.Obj)
	}
}

func TestDuplicateTermsAreSummed(t *testing.T) {
	// x + x <= 4 means 2x <= 4.
	p := NewProblem()
	x := p.AddVar(-1)
	p.AddConstraint([]Term{{x, 1}, {x, 1}}, LE, 4)
	res := solveOK(t, p)
	if math.Abs(res.X[x]-2) > tol {
		t.Errorf("x = %g, want 2", res.X[x])
	}
}

func TestBadVariableIndex(t *testing.T) {
	p := NewProblem()
	p.AddVar(1)
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
	if _, err := p.Solve(Options{}); err == nil {
		t.Error("expected ErrBadProblem")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1)
	p.AddConstraint([]Term{{x, 1}}, GE, 1)
	q := p.Clone()
	q.AddConstraint([]Term{{x, 1}}, LE, 0) // makes q infeasible
	rp := solveOK(t, p)
	rq := solveOK(t, q)
	if rp.Status != StatusOptimal {
		t.Errorf("p status = %v", rp.Status)
	}
	if rq.Status != StatusInfeasible {
		t.Errorf("q status = %v", rq.Status)
	}
}

func TestIterLimit(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(-1)
	y := p.AddVar(-1)
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 10)
	p.AddConstraint([]Term{{x, 2}, {y, 1}}, LE, 10)
	res, err := p.Solve(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusIterLimit && res.Status != StatusOptimal {
		t.Errorf("status = %v", res.Status)
	}
}

// TestTransportation checks a classical balanced transportation problem.
func TestTransportation(t *testing.T) {
	// Supplies 20,30; demands 10,25,15. Costs:
	//   [8, 6, 10]
	//   [9, 12, 13]
	p := NewProblem()
	costs := [2][3]float64{{8, 6, 10}, {9, 12, 13}}
	vars := [2][3]int{}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			vars[i][j] = p.AddVar(costs[i][j])
		}
	}
	supplies := []float64{20, 30}
	demands := []float64{10, 25, 15}
	for i := 0; i < 2; i++ {
		terms := []Term{}
		for j := 0; j < 3; j++ {
			terms = append(terms, Term{vars[i][j], 1})
		}
		p.AddConstraint(terms, EQ, supplies[i])
	}
	for j := 0; j < 3; j++ {
		terms := []Term{}
		for i := 0; i < 2; i++ {
			terms = append(terms, Term{vars[i][j], 1})
		}
		p.AddConstraint(terms, EQ, demands[j])
	}
	res := solveOK(t, p)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Known optimum: x12=20 (6*20), x21=10, x22=5, x23=15 -> 120+90+60+195=465.
	if math.Abs(res.Obj-465) > tol {
		t.Errorf("obj = %g, want 465", res.Obj)
	}
}

// TestRandomFeasibility: for random LPs with a known feasible point, the
// solver never reports infeasible, and returned solutions satisfy all
// constraints.
func TestRandomFeasibility(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := NewProblem()
		feas := make([]float64, n)
		for i := range feas {
			feas[i] = rng.Float64() * 5
			p.AddVar(rng.Float64()*4 - 2)
		}
		rows := make([][]Term, m)
		for r := 0; r < m; r++ {
			var terms []Term
			act := 0.0
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.7 {
					c := rng.Float64()*4 - 2
					terms = append(terms, Term{v, c})
					act += c * feas[v]
				}
			}
			if len(terms) == 0 {
				terms = []Term{{0, 1}}
				act = feas[0]
			}
			rows[r] = terms
			// Make the row satisfied by feas.
			if rng.Intn(2) == 0 {
				p.AddConstraint(terms, LE, act+rng.Float64())
			} else {
				p.AddConstraint(terms, GE, act-rng.Float64())
			}
		}
		res, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		if res.Status == StatusInfeasible {
			return false // a feasible point exists by construction
		}
		if res.Status != StatusOptimal {
			return true // unbounded is possible with random objectives
		}
		// Check feasibility of the returned point.
		for r, terms := range rows {
			act := 0.0
			for _, tm := range terms {
				act += tm.Coef * res.X[tm.Var]
			}
			c := constraintOf(p, r)
			switch c.Sense {
			case LE:
				if act > c.RHS+1e-6 {
					return false
				}
			case GE:
				if act < c.RHS-1e-6 {
					return false
				}
			}
		}
		for _, x := range res.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// constraintOf exposes rows for the property test.
func constraintOf(p *Problem, i int) Constraint { return p.rows[i] }

// TestRandomOptimalityVsEnumeration compares the solver against brute
// force over constraint-intersection vertices on tiny LPs.
func TestRandomOptimalityVsEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		// 2 variables, bounded box + up to 3 random cuts.
		p := NewProblem()
		c0 := rng.Float64()*4 - 2
		c1 := rng.Float64()*4 - 2
		x := p.AddVar(c0)
		y := p.AddVar(c1)
		type row struct {
			a, b, rhs float64
		}
		rows := []row{{1, 0, 3}, {0, 1, 3}} // x<=3, y<=3
		for k := 0; k < 3; k++ {
			rows = append(rows, row{rng.Float64()*2 - 0.5, rng.Float64()*2 - 0.5, rng.Float64()*3 + 0.5})
		}
		for _, r := range rows {
			p.AddConstraint([]Term{{x, r.a}, {y, r.b}}, LE, r.rhs)
		}
		res, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusOptimal {
			continue
		}
		// Brute force over a fine grid (sufficient for verification).
		best := math.Inf(1)
		const steps = 150
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				px := 3 * float64(i) / steps
				py := 3 * float64(j) / steps
				ok := true
				for _, r := range rows {
					if r.a*px+r.b*py > r.rhs+1e-12 {
						ok = false
						break
					}
				}
				if ok {
					if v := c0*px + c1*py; v < best {
						best = v
					}
				}
			}
		}
		if res.Obj > best+1e-2 {
			t.Errorf("trial %d: solver obj %g worse than grid %g", trial, res.Obj, best)
		}
	}
}
