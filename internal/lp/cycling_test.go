package lp

import (
	"math"
	"testing"
)

// TestBealeCycling runs Beale's classical cycling example, on which pure
// Dantzig pricing without safeguards cycles forever. The Bland fallback
// must terminate it at the optimum.
//
//	min  -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
//	s.t. 0.25 x4 -  60 x5 - 0.04 x6 + 9 x7 <= 0
//	     0.50 x4 -  90 x5 - 0.02 x6 + 3 x7 <= 0
//	     x6 <= 1
//
// Optimal value: -0.05 (x4 = 1/0.02... the classical optimum is
// z = -1/20 with x6 = 1, x4 = 0.04/0.25... verified by enumeration of the
// active-set vertices).
func TestBealeCycling(t *testing.T) {
	p := NewProblem()
	x4 := p.AddVar(-0.75)
	x5 := p.AddVar(150)
	x6 := p.AddVar(-0.02)
	x7 := p.AddVar(6)
	p.AddConstraint([]Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	p.AddConstraint([]Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	p.AddConstraint([]Term{{x6, 1}}, LE, 1)
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Known optimum of Beale's example: z* = -0.05 at x6=1, x4=0.04/0.25*...
	// Specifically x4 = 1/25*... check the value only.
	if math.Abs(res.Obj-(-0.05)) > 1e-6 {
		t.Errorf("obj = %g, want -0.05", res.Obj)
	}
}

// TestHighlyDegenerateEqualities stresses phase I with redundant equality
// rows (a common shape of the configuration program's coverage block).
func TestHighlyDegenerateEqualities(t *testing.T) {
	p := NewProblem()
	n := 8
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar(1)
	}
	all := make([]Term, n)
	for i, v := range vars {
		all[i] = Term{v, 1}
	}
	p.AddConstraint(all, EQ, 4)
	p.AddConstraint(all, EQ, 4) // duplicate row
	for i := 0; i < n; i += 2 {
		p.AddConstraint([]Term{{vars[i], 1}, {vars[i+1], 1}}, EQ, 1)
	}
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || math.Abs(res.Obj-4) > 1e-6 {
		t.Errorf("status=%v obj=%g, want optimal 4", res.Status, res.Obj)
	}
}

// TestRedundantAndConflictingDuplicates: a duplicated row with a
// different RHS is infeasible.
func TestConflictingDuplicateRows(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(0)
	y := p.AddVar(0)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 2)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 3)
	res, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

// TestCheckFeasible covers the feasibility evaluator used by the MILP
// rounding heuristic.
func TestCheckFeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar(1)
	y := p.AddVar(1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 3)
	p.AddConstraint([]Term{{x, 1}}, GE, 1)
	p.AddConstraint([]Term{{y, 2}}, EQ, 2)
	tests := []struct {
		x    []float64
		want bool
	}{
		{[]float64{1, 1}, true},
		{[]float64{2, 1}, true},
		{[]float64{0.5, 1}, false}, // violates GE
		{[]float64{1, 2}, false},   // violates EQ and LE
		{[]float64{-1, 1}, false},  // negative
		{[]float64{1}, false},      // wrong arity
	}
	for i, tt := range tests {
		if got := p.CheckFeasible(tt.x, 1e-9); got != tt.want {
			t.Errorf("case %d: CheckFeasible(%v) = %v, want %v", i, tt.x, got, tt.want)
		}
	}
	if obj := p.Objective([]float64{1, 1}); obj != 2 {
		t.Errorf("Objective = %g, want 2", obj)
	}
}
