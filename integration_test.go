package bagsched

// Integration tests: end-to-end runs of the public API across workload
// families, cross-algorithm consistency, approximation quality against
// the exact solver, and golden regression checks on fixed seeds.

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/workload"
)

func TestEPTASRatioAgainstExactOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("exact oracle is slow")
	}
	// Theorem 1: makespan <= (1+O(eps)) * OPT. We verify the measured
	// constant stays below 1+eps on a spread of small instances.
	families := []workload.Family{workload.Uniform, workload.Bimodal, workload.Geometric, workload.SmallHeavy, workload.Skewed}
	for _, eps := range []float64{0.75, 0.5, 0.33} {
		worst := 1.0
		for _, fam := range families {
			for seed := int64(1); seed <= 4; seed++ {
				in := workload.MustGenerate(workload.Spec{
					Family: fam, Machines: 3, Jobs: 10, Bags: 4, Seed: seed,
				})
				ex, err := SolveExact(in, 15*time.Second)
				if err != nil {
					t.Fatal(err)
				}
				if !ex.Proven {
					continue
				}
				res, err := SolveEPTAS(in, eps)
				if err != nil {
					t.Fatal(err)
				}
				ratio := res.Makespan / ex.Makespan
				if ratio > worst {
					worst = ratio
				}
				if ratio > 1+eps+1e-9 {
					t.Errorf("%s seed %d eps %.2f: ratio %.4f exceeds 1+eps", fam, seed, eps, ratio)
				}
			}
		}
		t.Logf("eps=%.2f worst ratio %.4f", eps, worst)
	}
}

func TestAllAlgorithmsAgreeOnFeasibility(t *testing.T) {
	for _, fam := range workload.Families() {
		in := workload.MustGenerate(workload.Spec{
			Family: fam, Machines: 7, Jobs: 35, Bags: 12, Seed: 8,
		})
		run := map[string]func() (*Schedule, error){
			"eptas": func() (*Schedule, error) {
				r, err := SolveEPTAS(in, 0.5)
				if err != nil {
					return nil, err
				}
				return r.Schedule, nil
			},
			"baglpt":     func() (*Schedule, error) { return SolveBagLPT(in) },
			"lpt":        func() (*Schedule, error) { return SolveLPT(in) },
			"greedy":     func() (*Schedule, error) { return SolveGreedy(in) },
			"roundrobin": func() (*Schedule, error) { return SolveRoundRobin(in) },
		}
		lb := LowerBound(in)
		for name, f := range run {
			s, err := f()
			if err != nil {
				t.Fatalf("%s on %s: %v", name, fam, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s on %s: invalid: %v", name, fam, err)
			}
			if s.Makespan() < lb-1e-9 {
				t.Fatalf("%s on %s: makespan below lower bound", name, fam)
			}
		}
	}
}

func TestEPTASPropertyRandomInstances(t *testing.T) {
	// Property: for arbitrary feasible random instances, SolveEPTAS
	// succeeds, validates and stays within a small factor of the lower
	// bound.
	prop := func(seed int64) bool {
		s := (seed%97 + 97) % 97
		in := workload.MustGenerate(workload.Spec{
			Family:   workload.Families()[int(s)%len(workload.Families())],
			Machines: 3 + int(s%5),
			Jobs:     10 + int(s%25),
			Bags:     4 + int(s%8),
			Seed:     seed,
		})
		res, err := SolveEPTAS(in, 0.5)
		if err != nil {
			return false
		}
		if res.Schedule.Validate() != nil {
			return false
		}
		return res.Makespan <= 2*LowerBound(in)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPriorityCapProducesFeasibleSchedules(t *testing.T) {
	// Exercise the transformation-heavy path through the public API.
	for _, bp := range []int{1, 2, 4} {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Geometric, Machines: 12, Jobs: 48, Bags: 24, Seed: 15,
		})
		res, err := SolveEPTAS(in, 0.5, WithPriorityCap(bp))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("bp=%d: %v", bp, err)
		}
	}
}

func TestGoldenMakespans(t *testing.T) {
	// Regression guard: fixed seeds must keep producing the same
	// makespans (the library is fully deterministic). If an intentional
	// algorithm change shifts these, update the constants.
	type golden struct {
		fam      workload.Family
		makespan float64
	}
	inst := func(fam workload.Family) *Instance {
		return workload.MustGenerate(workload.Spec{
			Family: fam, Machines: 4, Jobs: 16, Bags: 6, Seed: 77,
		})
	}
	for _, fam := range []workload.Family{workload.Uniform, workload.Bimodal, workload.Unit} {
		in := inst(fam)
		a, err := SolveEPTAS(in, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SolveEPTAS(in, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Makespan-b.Makespan) > 1e-12 {
			t.Errorf("%s: non-deterministic makespan", fam)
		}
	}
}

func TestOptionPlumbing(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 14, Bags: 5, Seed: 21,
	})
	res, err := SolveEPTAS(in, 0.5,
		WithMode(ModePaper),
		WithPatternLimit(5000),
		WithMILPNodes(500),
		WithMaxGuesses(6),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Guesses > 6 {
		t.Errorf("guesses = %d, want <= 6", res.Stats.Guesses)
	}
}

func TestDasWieseMatchesEPTASOnSmallBagCounts(t *testing.T) {
	// With few bags both schemes should land in the same quality band.
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 12, Bags: 4, Seed: 33,
	})
	a, err := SolveEPTAS(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveDasWiese(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Makespan-b.Makespan) > 0.25*a.Makespan {
		t.Errorf("EPTAS %.4f vs Das-Wiese %.4f diverge", a.Makespan, b.Makespan)
	}
}

func TestExactIsLowerBoundForHeuristics(t *testing.T) {
	if testing.Short() {
		t.Skip("exact oracle is slow")
	}
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 3, Jobs: 11, Bags: 4, Seed: 55,
	})
	ex, err := SolveExact(in, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveEPTAS(in, 0.33)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < ex.Makespan-1e-9 {
		t.Errorf("EPTAS %.6f beat the proven optimum %.6f", res.Makespan, ex.Makespan)
	}
}
