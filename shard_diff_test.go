package bagsched

// Shard-differential test of the serving layer: a consistent-hash
// router fronting N replicas must be answer-invisible — every solve
// through the router, under concurrent clients and across repeated
// (warm) passes, must agree bit for bit with the same solve against a
// single standalone replica. This is the repo's `make shard-diff` race
// gate: it exercises the router's decode/route/forward path, the
// fallback machinery and the per-replica caches under the race
// detector.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/server"
	"repro/internal/shard"
)

// postSolve sends one solve request and returns the decoded reply.
func postSolve(base string, raw json.RawMessage, fam string, eps float64) (makespan float64, err error) {
	body, err := json.Marshal(map[string]any{"instance": raw, "eps": eps, "family": fam})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var reply struct {
		Makespan float64 `json:"makespan"`
		Error    string  `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, reply.Error)
	}
	return reply.Makespan, nil
}

func TestShardRouterDifferential(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	const eps = 0.5

	type fixture struct {
		name string
		raw  json.RawMessage
		fam  string
	}
	var corpus []fixture
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		in := readFixture(t, path)
		fam := "bags"
		if !in.Uniform() {
			fam = "related"
		}
		corpus = append(corpus, fixture{filepath.Base(path), raw, fam})
	}

	// The reference: one standalone replica.
	single := server.New(server.Config{})
	singleTS := httptest.NewServer(single.Handler())
	defer singleTS.Close()

	// The subject: three replicas behind a consistent-hash router. Every
	// fixture is in flight at once and consistent hashing may land them
	// all on one replica, so give each replica an admission queue deep
	// enough to hold the whole corpus — this test is about answers, not
	// load shedding (the shard package tests cover 503 fallback).
	const nReplicas = 3
	var urls []string
	for i := 0; i < nReplicas; i++ {
		ts := httptest.NewServer(server.New(server.Config{QueueDepth: 2 * len(corpus)}).Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	rt, err := shard.New(shard.Config{Replicas: urls, HealthInterval: -1, RetryBackoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	want := make([]float64, len(corpus))
	for i, fx := range corpus {
		m, err := postSolve(singleTS.URL, fx.raw, fx.fam, eps)
		if err != nil {
			t.Fatalf("%s: single replica: %v", fx.name, err)
		}
		want[i] = m
	}

	// Two passes through the router — cold then warm — with every
	// fixture in flight concurrently. Pass 2 hits the per-replica caches
	// the router's placement built in pass 1.
	for pass := 1; pass <= 2; pass++ {
		var wg sync.WaitGroup
		errs := make([]error, len(corpus))
		for i, fx := range corpus {
			wg.Add(1)
			go func(i int, fx fixture) {
				defer wg.Done()
				m, err := postSolve(front.URL, fx.raw, fx.fam, eps)
				if err != nil {
					errs[i] = fmt.Errorf("%s: routed: %w", fx.name, err)
					return
				}
				if m != want[i] {
					errs[i] = fmt.Errorf("%s: routed makespan %.17g, single replica %.17g — routing must be answer-invisible",
						fx.name, m, want[i])
				}
			}(i, fx)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatalf("pass %d: %v", pass, err)
			}
		}
	}
}
