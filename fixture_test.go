package bagsched

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sched"
)

// TestFixtureRoundTrip exercises the on-disk interchange format end to
// end: read a committed instance, solve it, serialize the schedule, and
// check the decoded statistics agree — the workflow of cmd/benchgen +
// cmd/bagsched.
//
// The fixture is deterministic (workload generators are seeded);
// regenerate it with:
//
//	go run ./cmd/benchgen -family bimodal -machines 6 -jobs 24 -bags 8 \
//	    -out testdata/bimodal_m6_n24.json
func TestFixtureRoundTrip(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bimodal_m6_n24.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := sched.ReadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.Machines != 6 || len(in.Jobs) != 24 || in.NumBags != 8 {
		t.Fatalf("fixture shape changed: m=%d n=%d b=%d", in.Machines, len(in.Jobs), in.NumBags)
	}
	res, err := SolveEPTAS(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sched.WriteSchedule(&buf, res.Schedule); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"assignment", "makespan", "loads"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("schedule JSON missing %q", want)
		}
	}
	// Re-read the instance and confirm the identical solve (the library
	// is deterministic end to end, including through serialization).
	f2, err := os.Open(filepath.Join("testdata", "bimodal_m6_n24.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	in2, err := sched.ReadInstance(f2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := SolveEPTAS(in2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Makespan != res.Makespan {
		t.Errorf("non-deterministic through serialization: %.9f vs %.9f", res2.Makespan, res.Makespan)
	}
}
