package bagsched

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
)

// instanceFixtures globs the committed plain-instance corpus under
// testdata/, skipping the churn traces (churn_*.json) — those are a
// different document (a base instance plus delta steps, see
// sched.Trace) and are covered by resolve_diff_test.go.
func instanceFixtures(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	kept := files[:0]
	for _, f := range files {
		if strings.HasPrefix(filepath.Base(f), "churn_") {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// TestFixtureCorpus exercises the on-disk interchange format end to end
// over every committed instance under testdata/: read, solve, serialize
// the schedule, and confirm the identical solve after a round trip — the
// workflow of cmd/benchgen + cmd/bagsched. New fixtures are picked up
// automatically; regenerate or extend the corpus with, e.g.:
//
//	go run ./cmd/benchgen -family bimodal -machines 6 -jobs 24 -bags 8 \
//	    -out testdata/bimodal_m6_n24.json
//	go run ./cmd/benchgen -family adversarial -machines 8 -jobs 24 -bags 8 \
//	    -seed 1 -out testdata/adversarial_m8_n24.json
//	go run ./cmd/benchgen -family manylarge -machines 6 -jobs 24 -bags 8 \
//	    -seed 3 -out testdata/manylarge_m6_n16.json
//	go run ./cmd/benchgen -family relatedfew -machines 6 -jobs 20 \
//	    -seed 2 -out testdata/related_few_m6_n20.json
//	go run ./cmd/benchgen -family relatedskew -machines 8 -jobs 28 \
//	    -seed 5 -out testdata/related_skew_m8_n28.json
//
// Fixtures carrying machine speeds are solved as the related family;
// everything else runs the bag-constrained default.
func TestFixtureCorpus(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) < 3 {
		t.Fatalf("fixture corpus shrank: only %d files under testdata/", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			in := readFixture(t, path)
			if in.Machines < 1 || len(in.Jobs) == 0 {
				t.Fatalf("degenerate fixture: m=%d n=%d", in.Machines, len(in.Jobs))
			}
			opts := famOpts(in)
			if in.Uniform() {
				if err := in.Feasible(); err != nil {
					t.Fatal(err)
				}
			}
			res, err := SolveEPTAS(in, 0.5, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatal(err)
			}
			// res.LowerBound is the solving family's own bound (the bag
			// bound is invalid on speed instances).
			if res.Makespan < res.LowerBound-1e-9 {
				t.Fatalf("makespan %.9f below lower bound %.9f", res.Makespan, res.LowerBound)
			}
			var buf bytes.Buffer
			if err := sched.WriteSchedule(&buf, res.Schedule); err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"assignment", "makespan", "loads"} {
				if !bytes.Contains(buf.Bytes(), []byte(want)) {
					t.Errorf("schedule JSON missing %q", want)
				}
			}
			// Re-read the instance and confirm the identical solve (the
			// library is deterministic end to end, including through
			// serialization).
			res2, err := SolveEPTAS(readFixture(t, path), 0.5, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Makespan != res.Makespan {
				t.Errorf("non-deterministic through serialization: %.9f vs %.9f", res2.Makespan, res.Makespan)
			}
		})
	}
}

// TestFixtureShapes pins the committed corpus: one fixture per family the
// PR-level tests rely on, with the shapes they were generated at.
func TestFixtureShapes(t *testing.T) {
	shapes := map[string]struct{ m, n, b int }{
		"bimodal_m6_n24.json":     {6, 24, 8},
		"adversarial_m8_n24.json": {8, 24, 6},
		"manylarge_m6_n16.json":   {6, 16, 8},
		// Hand-crafted DP-favoring fixture: two distinct sizes in four
		// bags keep the pattern space tiny, the configuration-DP oracle's
		// sweet spot (see the backend benchmarks).
		"fewpatterns_m12_n32.json": {12, 32, 4},
		// Related-machines fixtures (singleton bags, machine speeds);
		// solved as FamilyRelated by the corpus test.
		"related_few_m6_n20.json":  {6, 20, 20},
		"related_skew_m8_n28.json": {8, 28, 28},
		// Large-instance scaling class (hundreds of machines, 200-400
		// jobs): the working set the parallel-oracle benchmarks scale
		// over, committed so every corpus-glob test exercises oracle
		// solves at production-like instance sizes. Regenerate with:
		//
		//	go run ./cmd/benchgen -family bimodal -machines 256 -jobs 384 \
		//	    -bags 32 -seed 7 -out testdata/large_bimodal_m256_n384.json
		//	go run ./cmd/benchgen -family geometric -machines 200 -jobs 320 \
		//	    -bags 24 -seed 9 -out testdata/large_geometric_m200_n320.json
		//	go run ./cmd/benchgen -family adversarial -machines 100 -jobs 300 \
		//	    -bags 24 -seed 13 -out testdata/large_adversarial_m100_n300.json
		//	go run ./cmd/benchgen -family relatedfew -machines 192 -jobs 288 \
		//	    -seed 17 -out testdata/large_related_m192_n288.json
		//
		// (adversarial derives its own job and bag counts from the machine
		// count; m=100 lands at n=300, b=52.)
		"large_bimodal_m256_n384.json":     {256, 384, 32},
		"large_geometric_m200_n320.json":   {200, 320, 24},
		"large_adversarial_m100_n300.json": {100, 300, 52},
		"large_related_m192_n288.json":     {192, 288, 288},
	}
	for name, want := range shapes {
		in := readFixture(t, filepath.Join("testdata", name))
		if in.Machines != want.m || len(in.Jobs) != want.n || in.NumBags != want.b {
			t.Errorf("%s shape changed: m=%d n=%d b=%d, want m=%d n=%d b=%d",
				name, in.Machines, len(in.Jobs), in.NumBags, want.m, want.n, want.b)
		}
	}

	// Churn traces (base instance + delta stream; see sched.Trace): the
	// replay corpus of resolve_diff_test.go, the Resolve benchmarks and
	// the churn-replay driver. churn_low is resize-only at ~8% churn per
	// step, churn_high mixes arrivals, departures, bag moves and machine
	// changes at ~30%. Regenerate with:
	//
	//	go run ./cmd/benchgen -family bimodal -machines 6 -jobs 24 -bags 8 \
	//	    -seed 11 -churn 12 -churn-frac 0.08 -churn-jitter 0.02 \
	//	    -churn-seed 21 -out testdata/churn_low_m6_n24.json
	//	go run ./cmd/benchgen -family adversarial -machines 8 -seed 3 \
	//	    -churn 8 -churn-frac 0.3 -churn-jitter 0.2 -churn-structural \
	//	    -churn-seed 33 -out testdata/churn_high_m8_n24.json
	traces := map[string]struct{ m, n, b, steps int }{
		"churn_low_m6_n24.json":  {6, 24, 8, 12},
		"churn_high_m8_n24.json": {8, 24, 6, 8},
	}
	for name, want := range traces {
		f, err := os.Open(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sched.ReadTrace(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Base.Machines != want.m || len(tr.Base.Jobs) != want.n ||
			tr.Base.NumBags != want.b || len(tr.Steps) != want.steps {
			t.Errorf("%s shape changed: m=%d n=%d b=%d steps=%d, want m=%d n=%d b=%d steps=%d",
				name, tr.Base.Machines, len(tr.Base.Jobs), tr.Base.NumBags, len(tr.Steps),
				want.m, want.n, want.b, want.steps)
		}
	}
}

// famOpts returns the solve options a fixture calls for: instances
// carrying distinct machine speeds run as the related family, everything
// else as the bag-constrained default.
func famOpts(in *Instance) []Option {
	if !in.Uniform() {
		return []Option{WithFamily(FamilyRelated)}
	}
	return nil
}

func readFixture(t *testing.T, path string) *Instance {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := sched.ReadInstance(f)
	if err != nil {
		t.Fatal(err)
	}
	return in
}
