package bagsched

// Plan-differential tests of the adaptive-solving seam (the `make
// plan-diff` gate):
//
//   - Attaching a cost model with adaptive mode off must be invisible:
//     on every committed fixture, for all three oracle backends (and the
//     related family on speed fixtures), the solve with a Planner
//     attached is bit-for-bit the plain solve — makespan, schedule,
//     lower bound, decision statistics and the Quality block — even
//     though the model demonstrably observes the solve's latency. This
//     is the contract that keeps the backend/family/workers/resolve/
//     shard differential gates meaningful after the adaptive layer
//     landed.
//   - With a trained model and a deadline far below the predicted
//     search cost, adaptive solving must land on exactly the rung the
//     ladder promises (bag-LPT before greedy), produce the identical
//     schedule the public SolveBagLPT heuristic returns, and report
//     that rung's theorem bound — which the answer is checked against.

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/plan"
)

func TestPlanAdaptiveOffBitIdentical(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			in := readFixture(t, path)
			var famOpt []Option
			if !in.Uniform() {
				famOpt = []Option{WithFamily(FamilyRelated)}
			}
			for _, bc := range backendCases {
				base := append(append([]Option{}, famOpt...), bc.opts...)
				ref, err := SolveEPTAS(in, 0.5, base...)
				if err != nil {
					t.Fatalf("%s plain: %v", bc.name, err)
				}
				m := NewPlanModel()
				got, err := SolveEPTAS(in, 0.5, append(append([]Option{}, base...), WithPlanner(m))...)
				if err != nil {
					t.Fatalf("%s with planner: %v", bc.name, err)
				}
				if got.Makespan != ref.Makespan {
					t.Errorf("%s: attaching a planner changed the makespan: %.17g vs %.17g",
						bc.name, got.Makespan, ref.Makespan)
				}
				if got.LowerBound != ref.LowerBound {
					t.Errorf("%s: attaching a planner changed the lower bound: %.17g vs %.17g",
						bc.name, got.LowerBound, ref.LowerBound)
				}
				if !reflect.DeepEqual(got.Schedule.Machine, ref.Schedule.Machine) {
					t.Errorf("%s: attaching a planner changed the schedule", bc.name)
				}
				if !reflect.DeepEqual(got.Stats.Decision(), ref.Stats.Decision()) {
					t.Errorf("%s: attaching a planner changed decision stats:\n%+v\nvs\n%+v",
						bc.name, got.Stats.Decision(), ref.Stats.Decision())
				}
				if !reflect.DeepEqual(got.Quality, ref.Quality) {
					t.Errorf("%s: attaching a planner changed the quality block:\n%+v\nvs\n%+v",
						bc.name, got.Quality, ref.Quality)
				}
				// The model must really have been in the loop: observation is
				// result-transparent, not skipped.
				if st := m.Snapshot(); st.Observations == 0 {
					t.Errorf("%s: attached planner observed nothing", bc.name)
				}
			}
		})
	}
}

// TestPlanAdaptiveTightDeadlineLPT trains the model to believe every
// eptas rung costs 250ms, then asks for a 5ms solve: the planner must
// degrade to the bag-LPT rung, whose answer is bit-identical to the
// public SolveBagLPT heuristic and carries that rung's theorem bound.
func TestPlanAdaptiveTightDeadlineLPT(t *testing.T) {
	in := readFixture(t, filepath.Join("testdata", "bimodal_m6_n24.json"))
	m := NewPlanModel()
	size := plan.SizeClass(len(in.Jobs))
	for _, eps := range append([]float64{0.25}, plan.EpsGrid...) {
		m.Observe(plan.Key{Family: "bags", Size: size, Rung: plan.RungEPTAS,
			EpsIdx: plan.EpsIndex(eps), Backend: "bnb", Workers: 1}, 250*time.Millisecond)
	}

	res, err := SolveEPTAS(in, 0.25,
		WithPlanner(m), WithAdaptive(), WithDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Rung != plan.RungLPT || !res.Quality.Degraded {
		t.Fatalf("tight deadline should degrade to the bag-LPT rung, got %+v", res.Quality)
	}

	lpt, err := SolveBagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != lpt.Makespan() {
		t.Fatalf("planned LPT rung makespan %.17g differs from SolveBagLPT's %.17g",
			res.Makespan, lpt.Makespan())
	}
	if !reflect.DeepEqual(res.Schedule.Machine, lpt.Machine) {
		t.Fatal("planned LPT rung schedule differs from SolveBagLPT")
	}

	wantBound := plan.HeuristicBound("bags", in.Machines, plan.RungLPT)
	if res.Makespan <= res.LowerBound {
		wantBound = 1 // provably optimal answers report the exact bound
	}
	if res.Quality.Bound != wantBound {
		t.Fatalf("LPT rung bound %g, want %g", res.Quality.Bound, wantBound)
	}
	if res.Makespan > res.Quality.Bound*res.LowerBound*(1+1e-9) {
		t.Fatalf("answer violates its reported bound: %.17g > %g * %.17g",
			res.Makespan, res.Quality.Bound, res.LowerBound)
	}

	// The decision is deterministic: the repeat observes only the
	// heuristic rung (never the eptas cells the decision reads), so a
	// second planned solve reproduces the first bit for bit.
	again, err := SolveEPTAS(in, 0.25,
		WithPlanner(m), WithAdaptive(), WithDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if again.Quality.Rung != res.Quality.Rung || again.Makespan != res.Makespan ||
		!reflect.DeepEqual(again.Schedule.Machine, res.Schedule.Machine) {
		t.Fatal("repeated planned solve diverged")
	}
}
