package bagsched

import (
	"testing"

	"repro/internal/workload"
)

// TestSmokeEPTAS runs the full pipeline end to end on one instance per
// workload family and checks feasibility and the approximation band
// against the combinatorial lower bound.
func TestSmokeEPTAS(t *testing.T) {
	for _, fam := range workload.Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			in := workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 4, Jobs: 24, Bags: 5, Seed: 7,
			})
			res, err := SolveEPTAS(in, 0.5)
			if err != nil {
				t.Fatalf("SolveEPTAS: %v", err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("invalid schedule: %v", err)
			}
			lb := LowerBound(in)
			t.Logf("family=%s makespan=%.4f lb=%.4f ratio=%.3f fallback=%v guesses=%d patterns=%d",
				fam, res.Makespan, lb, res.Makespan/lb, res.Stats.Fallback, res.Stats.Guesses, res.Stats.Patterns)
			if res.Makespan > lb*3 {
				t.Errorf("makespan %.4f more than 3x lower bound %.4f", res.Makespan, lb)
			}
		})
	}
}
