package bagsched

// Family-differential tests of the problem-family seam: the refactor
// that lifted the bag-constraint specifics behind internal/family must
// be invisible to the default pipeline, and the sibling families it
// enables must be correct in their own right.
//
//   - Bags is the identity refactor: solving with WithFamily(FamilyBags)
//     must be bit-for-bit the un-optioned solve — makespan, schedule and
//     decision statistics — on every committed fixture, for all three
//     oracle backends.
//   - Identical is the degenerate singleton-bag case: on instances that
//     already have one job per bag it must reproduce the bags solve
//     exactly (same prepared instance, same deterministic pipeline).
//   - Related is cross-checked against exhaustive enumeration on small
//     instances: the returned makespan must be sandwiched between the
//     brute-force optimum and its 1+O(eps) band, with the EPTAS pipeline
//     (not the SpeedLPT fallback) producing the schedule.

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/workload"
)

func TestFamilyBagsBitIdentical(t *testing.T) {
	files := instanceFixtures(t)
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			in := readFixture(t, path)
			if !in.Uniform() {
				t.Skip("speed fixture: bags rejects it by contract")
			}
			for _, bc := range backendCases {
				def, err := SolveEPTAS(in, 0.5, bc.opts...)
				if err != nil {
					t.Fatalf("%s default: %v", bc.name, err)
				}
				fam, err := SolveEPTAS(in, 0.5, append([]Option{WithFamily(FamilyBags)}, bc.opts...)...)
				if err != nil {
					t.Fatalf("%s via family seam: %v", bc.name, err)
				}
				if fam.Makespan != def.Makespan {
					t.Errorf("%s: family seam changed the makespan: %.17g vs %.17g", bc.name, fam.Makespan, def.Makespan)
				}
				if !reflect.DeepEqual(fam.Schedule.Machine, def.Schedule.Machine) {
					t.Errorf("%s: family seam changed the schedule", bc.name)
				}
				if fam.LowerBound != def.LowerBound {
					t.Errorf("%s: family seam changed the lower bound: %.17g vs %.17g", bc.name, fam.LowerBound, def.LowerBound)
				}
				if !reflect.DeepEqual(fam.Stats.Decision(), def.Stats.Decision()) {
					t.Errorf("%s: family seam changed decision stats:\n%+v\nvs\n%+v",
						bc.name, fam.Stats.Decision(), def.Stats.Decision())
				}
			}
		})
	}
}

// TestFamilyIdenticalMatchesBags solves singleton-bag instances both as
// the bag family and as the identical family: the identical family's
// Prepare rewrites bags to singletons, so on inputs already in that form
// the two solves run the same deterministic pipeline and must agree bit
// for bit.
func TestFamilyIdenticalMatchesBags(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Uniform, Machines: 5, Jobs: 18, Bags: 18, Seed: seed,
		})
		// Normalize to exact singleton bags (the generator only caps bag
		// sizes; the identity argument needs bag i == job i).
		norm := in.Clone()
		norm.NumBags = len(norm.Jobs)
		for i := range norm.Jobs {
			norm.Jobs[i].Bag = i
		}

		bags, err := SolveEPTAS(norm, 0.4)
		if err != nil {
			t.Fatalf("seed %d bags: %v", seed, err)
		}
		ident, err := SolveEPTAS(norm, 0.4, WithFamily(FamilyIdentical))
		if err != nil {
			t.Fatalf("seed %d identical: %v", seed, err)
		}
		if ident.Makespan != bags.Makespan {
			t.Errorf("seed %d: identical family makespan %.17g, bags %.17g", seed, ident.Makespan, bags.Makespan)
		}
		if !reflect.DeepEqual(ident.Schedule.Machine, bags.Schedule.Machine) {
			t.Errorf("seed %d: identical family schedule differs from bags on singleton bags", seed)
		}
		if !reflect.DeepEqual(ident.Stats.Decision(), bags.Stats.Decision()) {
			t.Errorf("seed %d: decision stats differ:\n%+v\nvs\n%+v",
				seed, ident.Stats.Decision(), bags.Stats.Decision())
		}
	}
}

// bruteForceRelated enumerates every assignment of the instance's jobs
// to machines and returns the optimal speed-aware makespan.
func bruteForceRelated(in *Instance) float64 {
	best := math.Inf(1)
	loads := make([]float64, in.Machines)
	var rec func(j int)
	rec = func(j int) {
		if j == len(in.Jobs) {
			ms := 0.0
			for m, l := range loads {
				if t := l / in.Speed(m); t > ms {
					ms = t
				}
			}
			if ms < best {
				best = ms
			}
			return
		}
		for m := 0; m < in.Machines; m++ {
			loads[m] += in.Jobs[j].Size
			rec(j + 1)
			loads[m] -= in.Jobs[j].Size
		}
	}
	rec(0)
	return best
}

func TestFamilyRelatedVsBruteForce(t *testing.T) {
	cases := []struct {
		name   string
		speeds []float64
		sizes  []float64
	}{
		{"two-speeds", []float64{1, 2}, []float64{1.6, 1.2, 0.8, 0.5, 0.4, 0.3}},
		{"fast-outlier", []float64{1, 1, 4}, []float64{3.5, 1.0, 0.9, 0.7, 0.3, 0.2, 0.1}},
		{"three-classes", []float64{1, 2, 4}, []float64{2.0, 2.0, 1.0, 0.6, 0.6, 0.5, 0.25}},
		{"unit-speeds", []float64{1, 1, 1}, []float64{1.0, 0.9, 0.8, 0.4, 0.3, 0.2}},
		{"near-speeds", []float64{2, 3}, []float64{2.5, 1.8, 1.1, 0.9, 0.4}},
	}
	const eps = 0.25
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			in := NewRelatedInstance(tc.speeds)
			for i, s := range tc.sizes {
				in.AddJob(s, i)
			}
			opt := bruteForceRelated(in)

			res, err := SolveEPTAS(in, eps, WithFamily(FamilyRelated))
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatal(err)
			}
			if res.Stats.Fallback {
				t.Error("related pipeline never accepted a guess; schedule is the SpeedLPT fallback")
			}
			if res.Makespan < opt-1e-9 {
				t.Errorf("makespan %.9f beats the brute-force optimum %.9f", res.Makespan, opt)
			}
			// Accepted guesses are realized within (1+2eps) and the search
			// overshoots the optimum by at most eps*lb/4, so 1+3eps bounds
			// the end-to-end ratio with room to spare.
			if res.Makespan > opt*(1+3*eps)+1e-9 {
				t.Errorf("makespan %.9f exceeds (1+3eps)*OPT = %.9f (OPT %.9f)", res.Makespan, opt*(1+3*eps), opt)
			}
			if res.Makespan < res.LowerBound-1e-9 {
				t.Errorf("makespan %.9f below the family lower bound %.9f", res.Makespan, res.LowerBound)
			}
			// The solve must be deterministic, family seam or not.
			again, err := SolveEPTAS(in, eps, WithFamily(FamilyRelated))
			if err != nil {
				t.Fatal(err)
			}
			if again.Makespan != res.Makespan || !reflect.DeepEqual(again.Schedule.Machine, res.Schedule.Machine) {
				t.Error("related solve is nondeterministic")
			}
		})
	}
}

// TestFamilyRelatedGeneratedWorkloads runs the related pipeline over the
// dedicated related workload generators at several sizes: schedules
// validate, beat nothing below the family lower bound, and improve on or
// match the SpeedLPT fallback.
func TestFamilyRelatedGeneratedWorkloads(t *testing.T) {
	for _, fam := range workload.RelatedFamilies() {
		for seed := int64(1); seed <= 3; seed++ {
			in := workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 8, Jobs: 30, Seed: seed,
			})
			res, err := SolveEPTAS(in, 0.4, WithFamily(FamilyRelated))
			if err != nil {
				t.Fatalf("%s seed %d: %v", fam, seed, err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", fam, seed, err)
			}
			if res.Makespan < res.LowerBound-1e-9 {
				t.Errorf("%s seed %d: makespan %.9f below lower bound %.9f", fam, seed, res.Makespan, res.LowerBound)
			}
			if res.Stats.Fallback {
				t.Errorf("%s seed %d: related pipeline fell back to SpeedLPT", fam, seed)
			}
		}
	}
}
