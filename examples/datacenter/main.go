// Datacenter replica placement: the motivating scenario of the paper's
// introduction (Section 1.1). Services run several replicas that must be
// placed on distinct machines for fault tolerance — exactly a bag per
// service — and the operator wants to minimize the maximum machine load.
//
// The example compares the EPTAS against the heuristics on a fleet-sized
// instance and prints the resulting load profiles.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	bagsched "repro"
)

func main() {
	const (
		machines = 12
		services = 18
	)
	rng := rand.New(rand.NewSource(2024))
	in := bagsched.NewInstance(machines)

	// Each service has 2-5 replicas; replica CPU demand depends on the
	// service tier.
	for svc := 0; svc < services; svc++ {
		replicas := 2 + rng.Intn(4)
		var demand float64
		switch svc % 3 {
		case 0: // frontend: light
			demand = 0.15 + 0.1*rng.Float64()
		case 1: // application: medium
			demand = 0.3 + 0.2*rng.Float64()
		case 2: // database: heavy
			demand = 0.6 + 0.3*rng.Float64()
		}
		for r := 0; r < replicas; r++ {
			in.AddJob(demand, svc)
		}
	}
	fmt.Printf("fleet: %d machines, %d services, %d replicas total\n",
		machines, services, len(in.Jobs))
	fmt.Printf("lower bound on optimal peak load: %.3f\n\n", bagsched.LowerBound(in))

	type row struct {
		name     string
		makespan float64
		loads    []float64
	}
	var rows []row

	res, err := bagsched.SolveEPTAS(in, 0.33)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"EPTAS(0.33)", res.Makespan, res.Schedule.Loads()})

	for name, algo := range map[string]func(*bagsched.Instance) (*bagsched.Schedule, error){
		"bag-LPT":     bagsched.SolveBagLPT,
		"greedy":      bagsched.SolveGreedy,
		"round-robin": bagsched.SolveRoundRobin,
	} {
		s, err := algo(in)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, s.Makespan(), s.Loads()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].makespan < rows[j].makespan })

	lb := bagsched.LowerBound(in)
	for _, r := range rows {
		fmt.Printf("%-12s peak %.3f (%.1f%% over bound)  spread [%.2f .. %.2f]\n",
			r.name, r.makespan, 100*(r.makespan/lb-1), minOf(r.loads), maxOf(r.loads))
	}
	fmt.Println("\nAll placements keep replicas of each service on distinct machines.")
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
