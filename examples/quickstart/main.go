// Quickstart: build a small bag-constrained instance by hand, run the
// EPTAS and print the schedule.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	bagsched "repro"
)

func main() {
	// 3 machines; 3 replicated services whose replicas must not share a
	// machine (one bag per service), plus some unconstrained batch jobs
	// (one bag each).
	in := bagsched.NewInstance(3)

	// Service A: two replicas of size 0.8 (bag 0).
	in.AddJob(0.8, 0)
	in.AddJob(0.8, 0)
	// Service B: three replicas of size 0.5 (bag 1).
	in.AddJob(0.5, 1)
	in.AddJob(0.5, 1)
	in.AddJob(0.5, 1)
	// Batch jobs: no mutual constraints (bags 2..4).
	in.AddJob(0.3, 2)
	in.AddJob(0.25, 3)
	in.AddJob(0.2, 4)

	res, err := bagsched.SolveEPTAS(in, 0.33)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lower bound:  %.3f\n", res.LowerBound)
	fmt.Printf("makespan:     %.3f (ratio %.3f)\n", res.Makespan, res.Makespan/res.LowerBound)
	fmt.Println()
	perMachine := res.Schedule.JobsOnMachine()
	for m, jobs := range perMachine {
		fmt.Printf("machine %d (load %.2f):", m, res.Schedule.Loads()[m])
		for _, j := range jobs {
			fmt.Printf("  job%d[bag%d,%.2f]", j, in.Jobs[j].Bag, in.Jobs[j].Size)
		}
		fmt.Println()
	}

	// Every schedule returned by the library is feasible by
	// construction; Validate double-checks the bag-constraints.
	if err := res.Schedule.Validate(); err != nil {
		log.Fatalf("schedule invalid: %v", err)
	}
	fmt.Println("\nschedule is feasible: no machine runs two jobs of one bag")
}
