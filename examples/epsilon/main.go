// Epsilon trade-off sweep: the defining property of an EPTAS is that the
// accuracy knob eps trades solution quality against a running time of the
// form f(1/eps) * poly(n). This example sweeps eps on one instance and
// prints quality, time and the size of the configuration program.
//
//	go run ./examples/epsilon
package main

import (
	"fmt"
	"log"
	"time"

	bagsched "repro"
	"repro/internal/workload"
)

func main() {
	in := workload.MustGenerate(workload.Spec{
		Family:   workload.Bimodal,
		Machines: 8,
		Jobs:     40,
		Bags:     10,
		Seed:     7,
	})
	lb := bagsched.LowerBound(in)
	fmt.Printf("instance: %d jobs, %d bags, %d machines; lower bound %.3f\n\n",
		len(in.Jobs), in.NumBags, in.Machines, lb)
	fmt.Printf("%-6s  %-9s  %-8s  %-9s  %-8s  %-7s\n",
		"eps", "makespan", "ratio", "patterns", "intvars", "time")

	for _, eps := range []float64{0.9, 0.75, 0.6, 0.5, 0.4, 0.33} {
		start := time.Now()
		res, err := bagsched.SolveEPTAS(in, eps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %-9.4f  %-8.4f  %-9d  %-8d  %s\n",
			eps, res.Makespan, res.Makespan/lb,
			res.Stats.Patterns, res.Stats.IntegerVars,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nSmaller eps: better guarantee, larger configuration program —")
	fmt.Println("the f(1/eps) * poly(n) running-time shape of Theorem 1.")
}
