package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/server"
)

// The SLO replay mode (-slo) demonstrates adaptive serving end to end,
// in process: it calibrates the server's latency cost model against the
// corpus, then replays a Zipf-skewed trace of mixed-deadline traffic —
// tight deadlines that the requested accuracy cannot meet, medium ones
// it can, loose ones trivially — once adaptively and once at the fixed
// requested eps. Every deadline in the trace is feasible (the ladder
// bottoms out at microsecond heuristics), so the adaptive pass is
// gated on hitting >= -slo-hit of them, while the fixed-eps baseline
// documents what the planner buys: it has no answer for the tight
// class except missing.
//
// All requests bypass the shared cache (-no_cache on the wire): the
// cost model must predict the cost of solving, and a cache-warm replay
// would teach it that every configuration is free.

// sloQuality mirrors the wire "quality" block.
type sloQuality struct {
	Rung         string  `json:"rung"`
	EpsUsed      float64 `json:"eps_used"`
	Bound        float64 `json:"bound"`
	Degraded     bool    `json:"degraded"`
	BestEffort   bool    `json:"best_effort"`
	PlannerUS    int64   `json:"planner_us"`
	PredictedUS  int64   `json:"predicted_us"`
	ModelVersion uint64  `json:"model_version"`
}

type sloReply struct {
	Makespan   float64    `json:"makespan"`
	LowerBound float64    `json:"lower_bound"`
	ElapsedUS  int64      `json:"elapsed_us"`
	Quality    sloQuality `json:"quality"`
	Error      string     `json:"error"`
}

// deadlineClass is one third of the trace: a multiplier on the
// calibrated requested-eps latency of the instance.
type deadlineClass struct {
	name string
	mult float64
}

var sloClasses = []deadlineClass{
	{"tight", 0.35}, // requested eps cannot fit; the ladder must answer
	{"medium", 2},   // requested eps fits with headroom
	{"loose", 8},    // trivially feasible
}

func runSLO(dir string, requests, maxJobs int, eps, zipfS float64, seed int64, hitTarget float64) error {
	corpus, names, fams, err := loadCorpus(dir)
	if err != nil {
		return err
	}
	corpus, names, fams, err = filterBySize(corpus, names, fams, maxJobs)
	if err != nil {
		return err
	}

	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Calibration: one no-cache solve per (instance, rung eps), so the
	// cost model holds real observations for the requested accuracy and
	// a few coarser rungs of each instance's size class. The requested-
	// eps latency anchors the trace's deadline classes.
	calEps := calibrationEps(eps)
	fmt.Printf("slo replay: calibrating %d instances x eps %v against in-process server\n", len(corpus), calEps)
	latUS := make([]int64, len(corpus))
	for i, raw := range corpus {
		for _, e := range calEps {
			rep, status, err := sloPost(ts.URL, map[string]any{
				"instance": json.RawMessage(raw), "eps": e, "family": fams[i], "no_cache": true,
			})
			if err != nil {
				return fmt.Errorf("calibrate %s eps %g: %w", names[i], e, err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("calibrate %s eps %g: status %d: %s", names[i], e, status, rep.Error)
			}
			if e == eps {
				latUS[i] = rep.ElapsedUS
			}
		}
	}

	trace := zipfTrace(len(corpus), requests, zipfS, seed)
	deadlines := make([]int64, len(trace))
	classes := make([]string, len(trace))
	for k, idx := range trace {
		c := sloClasses[k%len(sloClasses)]
		ms := int64(float64(latUS[idx]) * c.mult / 1000)
		if ms < 1 {
			ms = 1
		}
		deadlines[k] = ms
		classes[k] = c.name
	}

	fmt.Printf("slo replay: %d requests over %d instances (zipf %g, seed %d, eps %g, classes tight/medium/loose)\n",
		len(trace), len(corpus), zipfS, seed, eps)

	adaptive, err := sloPass(ts.URL, "adaptive", corpus, fams, trace, deadlines, classes, eps, true)
	if err != nil {
		return err
	}
	baseline, err := sloPass(ts.URL, "fixed-eps", corpus, fams, trace, deadlines, classes, eps, false)
	if err != nil {
		return err
	}

	fmt.Printf("\ndeadline-hit rate: adaptive %.1f%% (%d/%d)  fixed-eps baseline %.1f%% (%d/%d)\n",
		100*adaptive.hitRate(), adaptive.hits, adaptive.total,
		100*baseline.hitRate(), baseline.hits, baseline.total)
	fmt.Printf("degradation histogram (adaptive): %s\n", adaptive.histogram())
	fmt.Printf("planner overhead: p50 %s over %d planned requests (predicted-vs-actual p50: %s vs %s)\n",
		us(p50(adaptive.plannerUS)), len(adaptive.plannerUS), us(p50(adaptive.predictedUS)), us(p50(adaptive.elapsedUS)))

	verdict := "PASS"
	switch {
	case adaptive.hitRate() < hitTarget:
		verdict = "FAIL"
	case adaptive.hitRate() <= baseline.hitRate():
		verdict = "FAIL"
	}
	fmt.Printf("adaptive hit rate %.1f%% (threshold %.0f%%, baseline %.1f%%): %s\n",
		100*adaptive.hitRate(), 100*hitTarget, 100*baseline.hitRate(), verdict)
	if verdict == "FAIL" {
		return fmt.Errorf("adaptive hit rate %.3f below threshold %.3f or baseline %.3f",
			adaptive.hitRate(), hitTarget, baseline.hitRate())
	}
	return nil
}

// calibrationEps is the requested accuracy plus a few strictly coarser
// ladder rungs, so the model can predict intermediate degradations from
// evidence instead of borrowed overestimates.
func calibrationEps(eps float64) []float64 {
	out := []float64{eps}
	for _, g := range []float64{0.3, 0.5, 0.9} {
		if g > eps*(1+1e-9) {
			out = append(out, g)
		}
	}
	return out
}

// sloTally accumulates one replay pass.
type sloTally struct {
	hits, total int
	byClass     map[string][2]int // class -> {hits, total}
	rungs       map[string]int
	plannerUS   []int64
	predictedUS []int64
	elapsedUS   []int64
}

func (t *sloTally) hitRate() float64 {
	if t.total == 0 {
		return 0
	}
	return float64(t.hits) / float64(t.total)
}

func (t *sloTally) histogram() string {
	var keys []string
	for k := range t.rungs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for i, k := range keys {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s=%d", k, t.rungs[k])
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}

// sloPass replays the trace once, sequentially (latency is the
// measurement; concurrency would blur it). A hit is a 200 whose
// server-side elapsed time fits the deadline. Every degraded response
// is checked against its own reported bound.
func sloPass(url, label string, corpus []json.RawMessage, fams []string, trace []int, deadlines []int64, classes []string, eps float64, adaptive bool) (*sloTally, error) {
	t := &sloTally{byClass: map[string][2]int{}, rungs: map[string]int{}}
	start := time.Now()
	for k, idx := range trace {
		spec := map[string]any{
			"eps": eps, "family": fams[idx], "no_cache": true,
			"deadline_ms": deadlines[k],
		}
		if adaptive {
			spec["adaptive"] = true
		}
		// The adaptive pass exercises the nested spec form; the baseline
		// the legacy flat fields — both halves of the request contract.
		var body map[string]any
		if adaptive {
			body = map[string]any{"instance": json.RawMessage(corpus[idx]), "spec": spec}
		} else {
			body = map[string]any{"instance": json.RawMessage(corpus[idx])}
			for key, v := range spec {
				body[key] = v
			}
		}
		rep, status, err := sloPost(url, body)
		if err != nil {
			return nil, fmt.Errorf("%s request %d: %w", label, k, err)
		}
		t.total++
		cl := t.byClass[classes[k]]
		cl[1]++
		if status == http.StatusOK {
			if rep.ElapsedUS <= deadlines[k]*1000 {
				t.hits++
				cl[0]++
			}
			t.rungs[rep.Quality.Rung]++
			t.elapsedUS = append(t.elapsedUS, rep.ElapsedUS)
			if adaptive {
				t.plannerUS = append(t.plannerUS, rep.Quality.PlannerUS)
				if rep.Quality.PredictedUS > 0 {
					t.predictedUS = append(t.predictedUS, rep.Quality.PredictedUS)
				}
			}
			// Heuristic and repair rungs guarantee their bound against the
			// combinatorial lower bound, so it is checkable per response.
			// (The eptas rung's 1+eps is against the optimum — the lower
			// bound may sit below it by the paper's O(eps) constant.)
			if rep.Quality.Rung != "eptas" && rep.Quality.Bound > 0 && rep.LowerBound > 0 &&
				rep.Makespan > rep.Quality.Bound*rep.LowerBound*(1+1e-9) {
				return nil, fmt.Errorf("%s request %d: makespan %g violates reported bound %g x lb %g (rung %s)",
					label, k, rep.Makespan, rep.Quality.Bound, rep.LowerBound, rep.Quality.Rung)
			}
		}
		t.byClass[classes[k]] = cl
	}
	elapsed := time.Since(start)
	fmt.Printf("\n%s pass: %d requests in %s\n", label, len(trace), elapsed.Round(time.Millisecond))
	for _, c := range sloClasses {
		cl := t.byClass[c.name]
		if cl[1] == 0 {
			continue
		}
		fmt.Printf("  %-6s hit %3d/%3d (%.1f%%)\n", c.name, cl[0], cl[1], 100*float64(cl[0])/float64(cl[1]))
	}
	return t, nil
}

func sloPost(url string, body map[string]any) (*sloReply, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	var rep sloReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, 0, err
	}
	return &rep, resp.StatusCode, nil
}

func p50(vs []int64) int64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]int64{}, vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
