package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	bagsched "repro"
	"repro/internal/server"
	"repro/internal/shard"
)

// The multi-replica mode (-replicas N) runs the whole sharded serving
// stack in process: N solve replicas behind a consistent-hash router,
// replaying a Zipf-skewed trace over a synthetic corpus grown from the
// on-disk fixtures. It reports, from /v1/stats only:
//
//   - per-replica cache hit rates and routed-request shares under
//     consistent hashing,
//   - warm p50/p99 routed (hash) vs a fresh fleet behind the random
//     placement policy — the ablation that shows what signature routing
//     buys (-route-speedup is the PASS bar),
//   - snapshot warm-start: every hash-fleet cache is exported with the
//     versioned snapshot codec and imported into one fresh replica,
//     which must then serve the first replay of the same trace at
//     >= -hit-rate cache hit rate, with the import latency reported.
//
// Every phase cross-checks makespans bit for bit: routing policy,
// fallbacks and snapshot shipping must never change an answer.

// rawInstance mirrors the instance JSON just enough to perturb it.
type rawInstance struct {
	Machines int       `json:"machines"`
	NumBags  int       `json:"num_bags"`
	Speeds   []float64 `json:"speeds,omitempty"`
	Jobs     []rawJob  `json:"jobs"`
}

type rawJob struct {
	ID   int     `json:"id"`
	Size float64 `json:"size"`
	Bag  int     `json:"bag"`
}

// synthCorpus grows the base corpus to `distinct` instances by
// perturbing each job size with a deterministic per-variant factor in
// [0.6, 1.4). The perturbation is per-job (not uniform), so variants
// land on distinct scaled-rounded signatures — uniform scaling would
// cancel against the lower bound and collapse every variant onto one
// cache line.
func synthCorpus(base []json.RawMessage, names, fams []string, distinct int, seed int64) ([]json.RawMessage, []string, []string, error) {
	if distinct <= len(base) {
		return base, names, fams, nil
	}
	corpus := append([]json.RawMessage{}, base...)
	outNames := append([]string{}, names...)
	outFams := append([]string{}, fams...)
	for v := len(base); v < distinct; v++ {
		b := v % len(base)
		var inst rawInstance
		if err := json.Unmarshal(base[b], &inst); err != nil {
			return nil, nil, nil, fmt.Errorf("perturb %s: %w", names[b], err)
		}
		rng := rand.New(rand.NewSource(seed + int64(v)*1_000_003))
		for j := range inst.Jobs {
			inst.Jobs[j].Size *= 0.6 + 0.8*rng.Float64()
		}
		raw, err := json.Marshal(&inst)
		if err != nil {
			return nil, nil, nil, err
		}
		corpus = append(corpus, raw)
		outNames = append(outNames, fmt.Sprintf("%s#v%d", names[b], v))
		outFams = append(outFams, fams[b])
	}
	return corpus, outNames, outFams, nil
}

// filterBySize drops instances with more than maxJobs jobs (0 keeps
// everything), reporting what it skipped: the multi-replica mode
// measures routing and snapshot shipping, and one oversized variant
// solving for seconds would drown the latency signal.
func filterBySize(base []json.RawMessage, names, fams []string, maxJobs int) ([]json.RawMessage, []string, []string, error) {
	if maxJobs <= 0 {
		return base, names, fams, nil
	}
	var corpus []json.RawMessage
	var outNames, outFams []string
	var skipped []string
	for i, raw := range base {
		var inst rawInstance
		if err := json.Unmarshal(raw, &inst); err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", names[i], err)
		}
		if len(inst.Jobs) > maxJobs {
			skipped = append(skipped, names[i])
			continue
		}
		corpus = append(corpus, raw)
		outNames = append(outNames, names[i])
		outFams = append(outFams, fams[i])
	}
	if len(skipped) > 0 {
		fmt.Printf("skipping %d instances over %d jobs (pass -max-jobs 0 to keep them): %v\n", len(skipped), maxJobs, skipped)
	}
	if len(corpus) == 0 {
		return nil, nil, nil, fmt.Errorf("no instances at or under -max-jobs %d", maxJobs)
	}
	return corpus, outNames, outFams, nil
}

// zipfTrace draws `requests` corpus indices from a Zipf(s) distribution
// over n instances, deterministically from seed.
func zipfTrace(n, requests int, s float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	trace := make([]int, requests)
	for i := range trace {
		trace[i] = int(z.Uint64())
	}
	return trace
}

// fleet is N in-process solve replicas, each a full server.Server on
// its own memo cache behind its own HTTP listener.
type fleet struct {
	servers  []*server.Server
	backends []*httptest.Server
	urls     []string
}

func newFleet(n int) *fleet {
	f := &fleet{}
	for i := 0; i < n; i++ {
		srv := server.New(server.Config{})
		ts := httptest.NewServer(srv.Handler())
		f.servers = append(f.servers, srv)
		f.backends = append(f.backends, ts)
		f.urls = append(f.urls, ts.URL)
	}
	return f
}

func (f *fleet) close() {
	for _, ts := range f.backends {
		ts.Close()
	}
}

// front builds a router over the fleet and exposes it on its own
// listener. Health checking is passive (no background loop): the fleet
// is in-process and its liveness is the driver's own.
func (f *fleet) front(policy shard.Policy, seed int64) (*shard.Router, *httptest.Server, error) {
	rt, err := shard.New(shard.Config{
		Replicas:       f.urls,
		Policy:         policy,
		Seed:           seed,
		HealthInterval: -1,
		RetryBackoff:   -1,
	})
	if err != nil {
		return nil, nil, err
	}
	rt.Start()
	ts := httptest.NewServer(rt.Handler())
	return rt, ts, nil
}

// routerStats is the slice of the router's /v1/stats payload the driver
// reads.
type routerStats struct {
	Router struct {
		Policy          string `json:"policy"`
		Routed          int64  `json:"routed"`
		FallbackRetries int64  `json:"fallback_retries"`
	} `json:"router"`
	Replicas []struct {
		URL     string `json:"url"`
		Healthy bool   `json:"healthy"`
		Routed  int64  `json:"routed"`
	} `json:"replicas"`
	Window window `json:"window"`
}

func fetchRouterStats(addr string, n int) (*routerStats, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/stats?window=%d", addr, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("router stats: status %d", resp.StatusCode)
	}
	var st routerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// replayTrace posts the trace in order (at most `concurrency` in
// flight) and returns the makespan per trace position.
func replayTrace(addr string, corpus []json.RawMessage, fams []string, trace []int, concurrency int, eps float64, backend string) ([]float64, error) {
	reqs := make([]json.RawMessage, len(trace))
	reqFams := make([]string, len(trace))
	for i, v := range trace {
		reqs[i] = corpus[v]
		reqFams[i] = fams[v]
	}
	return replay(addr, reqs, reqFams, concurrency, eps, backend, false)
}

// checkTrace verifies every trace position against the per-variant
// baseline, growing the baseline on first sight. All phases share one
// baseline: any routing or snapshot divergence is a hard failure.
func checkTrace(phase string, trace []int, makespans []float64, names []string, baseline map[int]float64) error {
	for i, v := range trace {
		got := makespans[i]
		want, ok := baseline[v]
		if !ok {
			baseline[v] = got
			continue
		}
		if got != want {
			return fmt.Errorf("%s: %s returned makespan %.17g, baseline is %.17g — serving must be result-transparent",
				phase, names[v], got, want)
		}
	}
	return nil
}

// runMulti is the -replicas N mode. See the package comment block above
// for what it measures.
func runMulti(dir string, nReplicas, requests, distinct, concurrency, maxJobs int, eps float64, backend string, zipfS float64, seed int64, routeSpeedup, hitRateMin float64) error {
	base, names, fams, err := loadCorpus(dir)
	if err != nil {
		return err
	}
	base, names, fams, err = filterBySize(base, names, fams, maxJobs)
	if err != nil {
		return err
	}
	corpus, names, fams, err := synthCorpus(base, names, fams, distinct, seed)
	if err != nil {
		return err
	}
	trace := zipfTrace(len(corpus), requests, zipfS, seed)
	unique := map[int]bool{}
	for _, v := range trace {
		unique[v] = true
	}
	fmt.Printf("multi-replica: %d replicas, %d requests over %d distinct instances (%d drawn, zipf s=%g, seed %d, eps %g)\n",
		nReplicas, requests, len(corpus), len(unique), zipfS, seed, eps)

	baseline := map[int]float64{}

	// Phase 1: consistent-hash fleet, cold then warm pass of the same
	// trace.
	hashFleet := newFleet(nReplicas)
	defer hashFleet.close()
	hashRouter, hashFront, err := hashFleet.front(shard.PolicyHash, seed)
	if err != nil {
		return err
	}
	defer hashRouter.Close()
	defer hashFront.Close()

	coldStart := time.Now()
	makespans, err := replayTrace(hashFront.URL, corpus, fams, trace, concurrency, eps, backend)
	if err != nil {
		return fmt.Errorf("hash cold pass: %w", err)
	}
	if err := checkTrace("hash cold pass", trace, makespans, names, baseline); err != nil {
		return err
	}
	coldStats, err := fetchRouterStats(hashFront.URL, len(trace))
	if err != nil {
		return err
	}
	fmt.Printf("hash cold pass:   p50 %s  p99 %s  (%s wall)\n",
		us(coldStats.Window.P50), us(coldStats.Window.P99), time.Since(coldStart).Round(time.Millisecond))

	makespans, err = replayTrace(hashFront.URL, corpus, fams, trace, concurrency, eps, backend)
	if err != nil {
		return fmt.Errorf("hash warm pass: %w", err)
	}
	if err := checkTrace("hash warm pass", trace, makespans, names, baseline); err != nil {
		return err
	}
	hashStats, err := fetchRouterStats(hashFront.URL, len(trace))
	if err != nil {
		return err
	}
	fmt.Printf("hash warm pass:   p50 %s  p99 %s  (fallback retries %d)\n",
		us(hashStats.Window.P50), us(hashStats.Window.P99), hashStats.Router.FallbackRetries)

	// Per-replica view: routed share from the router, hit rate from each
	// replica's own stats.
	for i, url := range hashFleet.urls {
		st, err := fetchStats(url, 1)
		if err != nil {
			return err
		}
		hits, misses := st.Cache.Hits, st.Cache.Misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		var routed int64
		for _, r := range hashStats.Replicas {
			if r.URL == url {
				routed = r.Routed
			}
		}
		fmt.Printf("  replica %d: %4d routed, %d entries, hit rate %.0f%% (%d hits / %d misses)\n",
			i, routed, st.Cache.Entries, 100*rate, hits, misses)
	}

	// Phase 2: ablation — a fresh fleet behind random placement replays
	// the identical trace. Cold caches everywhere, so any warm-pass gap
	// vs phase 1 is pure routing.
	randFleet := newFleet(nReplicas)
	defer randFleet.close()
	randRouter, randFront, err := randFleet.front(shard.PolicyRandom, seed)
	if err != nil {
		return err
	}
	defer randRouter.Close()
	defer randFront.Close()

	makespans, err = replayTrace(randFront.URL, corpus, fams, trace, concurrency, eps, backend)
	if err != nil {
		return fmt.Errorf("random cold pass: %w", err)
	}
	if err := checkTrace("random cold pass", trace, makespans, names, baseline); err != nil {
		return err
	}
	makespans, err = replayTrace(randFront.URL, corpus, fams, trace, concurrency, eps, backend)
	if err != nil {
		return fmt.Errorf("random warm pass: %w", err)
	}
	if err := checkTrace("random warm pass", trace, makespans, names, baseline); err != nil {
		return err
	}
	randStats, err := fetchRouterStats(randFront.URL, len(trace))
	if err != nil {
		return err
	}
	fmt.Printf("random warm pass: p50 %s  p99 %s\n", us(randStats.Window.P50), us(randStats.Window.P99))

	ratio := float64(randStats.Window.P50) / float64(max64(hashStats.Window.P50, 1))
	verdict := "PASS"
	if ratio < routeSpeedup {
		verdict = "FAIL"
	}
	fmt.Printf("routed vs random warm p50: %s vs %s = %.1fx (threshold %.1fx): %s\n",
		us(hashStats.Window.P50), us(randStats.Window.P50), ratio, routeSpeedup, verdict)
	if verdict == "FAIL" {
		return fmt.Errorf("hash routing warm p50 only %.2fx better than random, need %.1fx", ratio, routeSpeedup)
	}

	// Phase 3: snapshot warm-start. Export every hash-fleet cache with
	// the versioned snapshot codec, import all of them into one fresh
	// replica, and replay the trace against it directly: the first pass
	// must already be warm.
	var snaps []*bytes.Buffer
	var snapBytes int64
	exported := 0
	for _, srv := range hashFleet.servers {
		var buf bytes.Buffer
		n, err := bagsched.ExportCacheSnapshot(srv.Cache(), &buf)
		if err != nil {
			return fmt.Errorf("snapshot export: %w", err)
		}
		exported += n
		snapBytes += int64(buf.Len())
		snaps = append(snaps, &buf)
	}

	warm := server.New(server.Config{})
	warmTS := httptest.NewServer(warm.Handler())
	defer warmTS.Close()
	importStart := time.Now()
	loaded := 0
	for _, buf := range snaps {
		st, err := bagsched.ImportCacheSnapshot(warm.Cache(), buf)
		if err != nil {
			return fmt.Errorf("snapshot import: %w", err)
		}
		warm.RecordSnapshot(st.Loaded, st.Skipped())
		loaded += st.Loaded
	}
	importDur := time.Since(importStart)
	fmt.Printf("snapshot warm-start: %d entries (%s) from %d replicas imported as %d in %s\n",
		exported, bytesHuman(snapBytes), nReplicas, loaded, importDur.Round(time.Microsecond))

	makespans, err = replayTrace(warmTS.URL, corpus, fams, trace, concurrency, eps, backend)
	if err != nil {
		return fmt.Errorf("snapshot warm pass: %w", err)
	}
	if err := checkTrace("snapshot warm pass", trace, makespans, names, baseline); err != nil {
		return err
	}
	warmStats, err := fetchStats(warmTS.URL, len(trace))
	if err != nil {
		return err
	}
	hits, misses := warmStats.Cache.Hits, warmStats.Cache.Misses
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	verdict = "PASS"
	if rate < hitRateMin {
		verdict = "FAIL"
	}
	fmt.Printf("snapshot-warmed first pass: p50 %s  hit rate %.0f%% (%d hits / %d misses, threshold %.0f%%): %s\n",
		us(warmStats.Window.P50), 100*rate, hits, misses, 100*hitRateMin, verdict)
	if verdict == "FAIL" {
		return fmt.Errorf("snapshot-warmed hit rate %.0f%% below %.0f%%", 100*rate, 100*hitRateMin)
	}
	fmt.Printf("bit-identity: %d distinct instances agreed across all passes and fleets\n", len(baseline))
	return nil
}
