package main

// Churn-replay mode (-churn): the incremental re-solve load driver.
//
// Where the default mode replays a static corpus to profile the shared
// cache, this mode replays churn traces (testdata/churn_*.json — a base
// instance plus a stream of deltas, see sched.Trace) the way a dynamic
// workload would consume the service: solve the base once, then on
// every delta issue
//
//   - one POST /v1/resolve carrying the prior solve's facts (makespan,
//     final accepted guess, and with -churn-repair the assignment) — the
//     incremental path: warm-started search plus the server's shared
//     memo; and
//   - one POST /v1/solve of the post-delta instance with the cache
//     bypassed — the from-scratch baseline the incremental answer must
//     match bit for bit.
//
// The driver checks that identity on every non-repaired step, then
// reports warm-vs-cold p50/p99 over the server-measured solve times and
// ends with a PASS/FAIL line: low-churn traces (at most ~10% of jobs
// edited per step) must clear the -resolve-speedup ratio (default 5x,
// the incremental-serving acceptance bar); higher-churn traces report
// their ratio for the record without gating.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/sched"
)

// resolveReply is the slice of a /v1/resolve (or /v1/solve) response
// the replay consumes.
type resolveReply struct {
	Makespan   float64 `json:"makespan"`
	FinalGuess float64 `json:"final_guess"`
	Assignment []int   `json:"assignment"`
	Guesses    int     `json:"guesses"`
	Repaired   bool    `json:"repaired"`
	Coalesced  bool    `json:"coalesced"`
	ElapsedUS  int64   `json:"elapsed_us"`
	Error      string  `json:"error"`
}

// lowChurnFrac is the per-step edit fraction below which a trace counts
// as low churn and gates the speedup threshold.
const lowChurnFrac = 0.10 + 1e-9

func runChurn(addr, path string, passes int, eps float64, backend string, repair bool, speedup float64) error {
	traces, err := churnTraces(path)
	if err != nil {
		return err
	}
	if err := waitHealthy(addr); err != nil {
		return err
	}
	fmt.Printf("churn-replaying %d trace(s) against %s (%d passes, eps %g, repair %v)\n",
		len(traces), addr, passes, eps, repair)
	failed := false
	for _, tp := range traces {
		ok, err := replayChurnTrace(addr, tp, passes, eps, backend, repair, speedup)
		if err != nil {
			return fmt.Errorf("%s: %w", filepath.Base(tp), err)
		}
		if !ok {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("incremental speedup below %.1fx on a low-churn trace", speedup)
	}
	return nil
}

// churnTraces resolves -churn: a trace file replays alone, a directory
// replays every churn_*.json under it.
func churnTraces(path string) ([]string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return []string{path}, nil
	}
	files, err := filepath.Glob(filepath.Join(path, "churn_*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no churn_*.json traces in %s", path)
	}
	sort.Strings(files)
	return files, nil
}

func replayChurnTrace(addr, path string, passes int, eps float64, backend string, repair bool, speedup float64) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	tr, err := sched.ReadTrace(f)
	f.Close()
	if err != nil {
		return false, err
	}
	frac := churnFrac(tr)
	fmt.Printf("%s: %d steps over m=%d n=%d (avg churn %.0f%% of jobs per step)\n",
		filepath.Base(path), len(tr.Steps), tr.Base.Machines, len(tr.Base.Jobs), 100*frac)

	var warm, cold []int64
	var repaired, coalesced int
	var firstPass []float64
	for pass := 1; pass <= passes; pass++ {
		// Solve the base through the normal cached path: its response
		// seeds the prior-facts chain, and its per-guess memo entries are
		// what the incremental steps reuse server-side.
		prior, err := postJSON(addr+"/v1/solve", map[string]any{
			"instance": tr.Base, "eps": eps, "backend": backend,
		})
		if err != nil {
			return false, fmt.Errorf("base solve: %w", err)
		}
		cur := tr.Base
		var makespans []float64
		for i, d := range tr.Steps {
			post, _, err := d.Apply(cur)
			if err != nil {
				return false, fmt.Errorf("step %d does not apply: %w", i, err)
			}
			req := map[string]any{
				"instance": cur, "delta": d, "eps": eps, "backend": backend,
				"prior_makespan": prior.Makespan, "prior_guess": prior.FinalGuess,
			}
			if repair {
				req["repair"] = true
				req["prior_assignment"] = prior.Assignment
			}
			res, err := postJSON(addr+"/v1/resolve", req)
			if err != nil {
				return false, fmt.Errorf("step %d: resolve: %w", i, err)
			}
			// The baseline bypasses the shared cache entirely: the cost
			// of solving the post-delta instance with no prior knowledge.
			scratch, err := postJSON(addr+"/v1/solve", map[string]any{
				"instance": post, "eps": eps, "backend": backend, "no_cache": true,
			})
			if err != nil {
				return false, fmt.Errorf("step %d: from-scratch: %w", i, err)
			}
			if res.Repaired {
				repaired++
			} else if res.Makespan != scratch.Makespan {
				return false, fmt.Errorf("step %d: incremental makespan %.17g differs from from-scratch %.17g — resolve must be bit-identical",
					i, res.Makespan, scratch.Makespan)
			}
			// Coalesced responses (replayed passes hit the server's
			// response cache) measure the cache, not the warm search;
			// keep them out of the latency profile.
			if res.Coalesced {
				coalesced++
			} else {
				warm = append(warm, res.ElapsedUS)
			}
			cold = append(cold, scratch.ElapsedUS)
			makespans = append(makespans, res.Makespan)
			prior, cur = res, post
		}
		if pass == 1 {
			firstPass = makespans
		} else {
			for i := range makespans {
				if makespans[i] != firstPass[i] {
					return false, fmt.Errorf("pass %d step %d: makespan %.17g differs from pass 1's %.17g — replay must be deterministic",
						pass, i, makespans[i], firstPass[i])
				}
			}
		}
	}

	w50, w99 := percentiles(warm)
	c50, c99 := percentiles(cold)
	fmt.Printf("  incremental   p50 %s  p99 %s  (%d samples, %d repaired, %d coalesced)\n",
		us(w50), us(w99), len(warm), repaired, coalesced)
	fmt.Printf("  from-scratch  p50 %s  p99 %s  (%d samples)\n", us(c50), us(c99), len(cold))
	ratio := float64(c50) / float64(max64(w50, 1))
	if frac > lowChurnFrac {
		fmt.Printf("  speedup %.1fx (high-churn trace: reported, not gated)\n", ratio)
		return true, nil
	}
	verdict := "PASS"
	if ratio < speedup {
		verdict = "FAIL"
	}
	fmt.Printf("  speedup %.1fx (threshold %.1fx at <=10%% churn): %s\n", ratio, speedup, verdict)
	return verdict == "PASS", nil
}

// churnFrac is the average fraction of jobs a step edits, the knob the
// speedup gate keys on.
func churnFrac(tr *sched.Trace) float64 {
	cur := tr.Base
	var sum float64
	for _, d := range tr.Steps {
		edits := len(d.Add) + len(d.Remove) + len(d.Resize) + len(d.Rebag)
		sum += float64(edits) / float64(len(cur.Jobs))
		post, _, err := d.Apply(cur)
		if err != nil {
			break // replay reports the real error with its step index
		}
		cur = post
	}
	return sum / float64(len(tr.Steps))
}

func postJSON(url string, body map[string]any) (*resolveReply, error) {
	if body["backend"] == "" {
		delete(body, "backend")
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var reply resolveReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, reply.Error)
	}
	return &reply, nil
}

// percentiles returns the p50 and p99 of samples (0,0 when empty).
func percentiles(samples []int64) (p50, p99 int64) {
	if len(samples) == 0 {
		return 0, 0
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2], s[(len(s)*99)/100]
}
