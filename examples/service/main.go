// Command service is the load driver for the bagsched solve service: it
// replays an instance corpus (by default the repository's testdata
// fixtures) against a running server for several passes and reports the
// cold-vs-warm latency profile from the server's own GET /v1/stats
// window percentiles.
//
// The first pass hits an empty cache and pays the full EPTAS
// guess-enumeration cost per instance; every later pass replays the
// identical workload, so the shared cross-request memo serves each guess
// from memory and the p50 collapses. A run ends with a PASS/FAIL line
// against the -speedup threshold (default 2x, the serving-layer
// acceptance bar).
//
// Usage:
//
//	bagsched serve -addr :8080 &        # or: make serve
//	go run ./examples/service -addr http://127.0.0.1:8080 -dir testdata
//
// Flags select the corpus directory, pass count, request concurrency,
// accuracy and backend; -no-cache replays with the shared cache bypassed
// (a control run: without the cache, warm passes stay as slow as cold
// ones).
//
// The replay is mixed-family: each instance is routed to its problem
// family from its own JSON (a non-uniform "speeds" array marks a
// related-machines instance, everything else replays as bags), the
// "family" field rides on every solve request, and the run ends with a
// per-family cold-vs-warm p50 breakdown read from the families section
// of GET /v1/stats — so one run profiles the shared cache across every
// family the corpus exercises.
//
// With -churn the driver switches to churn-replay mode (see churn.go):
// it replays churn traces through POST /v1/resolve against a
// from-scratch /v1/solve baseline and gates on the incremental speedup:
//
//	go run ./examples/service -addr http://127.0.0.1:8080 -churn testdata
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

type solveReply struct {
	Makespan  float64 `json:"makespan"`
	Guesses   int     `json:"guesses"`
	CacheHits int     `json:"cache_hits"`
	ElapsedUS int64   `json:"elapsed_us"`
	Error     string  `json:"error"`
}

type window struct {
	Count int   `json:"count"`
	P50   int64 `json:"p50_us"`
	P90   int64 `json:"p90_us"`
	P99   int64 `json:"p99_us"`
	Max   int64 `json:"max_us"`
}

type statsReply struct {
	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Entries   int   `json:"entries"`
		CostBytes int64 `json:"cost_bytes"`
	} `json:"cache"`
	Window   window               `json:"window"`
	Families map[string]famWindow `json:"families"`
}

// famWindow is one family's slice of the stats payload.
type famWindow struct {
	Solves int64  `json:"solves"`
	Window window `json:"window"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of a running bagsched serve")
	dir := flag.String("dir", "testdata", "directory of instance JSONs to replay")
	passes := flag.Int("passes", 3, "replay passes over the corpus (pass 1 is cold)")
	concurrency := flag.Int("concurrency", 4, "concurrent in-flight requests")
	eps := flag.Float64("eps", 0.5, "accuracy parameter")
	backend := flag.String("backend", "", "oracle backend (empty = server default)")
	noCache := flag.Bool("no-cache", false, "bypass the shared cache (control run)")
	speedup := flag.Float64("speedup", 2, "required cold-p50 / warm-p50 ratio for PASS")
	replicas := flag.Int("replicas", 0, "run the in-process multi-replica mode with this many sharded replicas (0 = single-server replay against -addr)")
	requests := flag.Int("requests", 192, "multi-replica: requests per trace pass")
	distinct := flag.Int("distinct", 512, "multi-replica: synthetic corpus size grown from -dir by job-size perturbation")
	zipfS := flag.Float64("zipf-s", 1.1, "multi-replica: Zipf skew of the trace (> 1)")
	seed := flag.Int64("seed", 1, "multi-replica: trace and perturbation seed")
	routeSpeedup := flag.Float64("route-speedup", 2, "multi-replica: required random-p50 / hash-p50 warm ratio for PASS")
	hitRate := flag.Float64("hit-rate", 0.5, "multi-replica: required first-pass cache hit rate on the snapshot-warmed replica")
	maxJobs := flag.Int("max-jobs", 64, "multi-replica: skip corpus instances with more jobs (the mode measures routing, not solver scale; 0 = keep all)")
	churn := flag.String("churn", "", "churn-replay mode: a churn trace file, or a directory of churn_*.json traces, replayed via /v1/resolve against a from-scratch /v1/solve baseline")
	churnRepair := flag.Bool("churn-repair", false, "churn-replay: enable the placement-repair fast path (repaired steps certify instead of matching bit for bit)")
	resolveSpeedup := flag.Float64("resolve-speedup", 5, "churn-replay: required from-scratch-p50 / incremental-p50 ratio for PASS on low-churn traces")
	slo := flag.Bool("slo", false, "SLO replay mode: calibrate an in-process server's cost model, then replay a mixed-deadline Zipf trace adaptively vs at fixed eps and gate on the deadline-hit rate")
	sloHit := flag.Float64("slo-hit", 0.95, "slo: required adaptive deadline-hit rate for PASS (the fixed-eps baseline must also be beaten)")
	flag.Parse()

	if *slo {
		if *zipfS <= 1 {
			fmt.Fprintln(os.Stderr, "service: -zipf-s must be > 1")
			os.Exit(1)
		}
		if err := runSLO(*dir, *requests, *maxJobs, *eps, *zipfS, *seed, *sloHit); err != nil {
			fmt.Fprintln(os.Stderr, "service:", err)
			os.Exit(1)
		}
		return
	}
	if *churn != "" {
		if err := runChurn(*addr, *churn, *passes, *eps, *backend, *churnRepair, *resolveSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "service:", err)
			os.Exit(1)
		}
		return
	}
	if *replicas > 0 {
		if *zipfS <= 1 {
			fmt.Fprintln(os.Stderr, "service: -zipf-s must be > 1")
			os.Exit(1)
		}
		if err := runMulti(*dir, *replicas, *requests, *distinct, *concurrency, *maxJobs, *eps, *backend, *zipfS, *seed, *routeSpeedup, *hitRate); err != nil {
			fmt.Fprintln(os.Stderr, "service:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *dir, *passes, *concurrency, *eps, *backend, *noCache, *speedup); err != nil {
		fmt.Fprintln(os.Stderr, "service:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, passes, concurrency int, eps float64, backend string, noCache bool, speedup float64) error {
	corpus, names, fams, err := loadCorpus(dir)
	if err != nil {
		return err
	}
	// The per-family breakdown needs each family's per-pass solve count:
	// that count is the stats window isolating one pass of that family.
	famCount := map[string]int{}
	var famOrder []string
	for _, f := range fams {
		if famCount[f] == 0 {
			famOrder = append(famOrder, f)
		}
		famCount[f]++
	}
	sort.Strings(famOrder)
	fmt.Printf("replaying %d instances from %s against %s (%d passes, concurrency %d, eps %g, cache %v, families %s)\n",
		len(corpus), dir, addr, passes, concurrency, eps, !noCache, strings.Join(famOrder, "+"))

	if err := waitHealthy(addr); err != nil {
		return err
	}

	var p50s []int64
	famP50s := map[string][]int64{}
	var baseline []float64
	for pass := 1; pass <= passes; pass++ {
		makespans, err := replay(addr, corpus, fams, concurrency, eps, backend, noCache)
		if err != nil {
			return fmt.Errorf("pass %d: %w", pass, err)
		}
		st, err := fetchStats(addr, len(corpus))
		if err != nil {
			return err
		}
		w := st.Window
		label := "warm"
		if pass == 1 {
			label = "cold"
		}
		fmt.Printf("pass %d (%s): p50 %s  p90 %s  p99 %s  max %s  (cache: %d hits, %d misses, %d entries, %s)\n",
			pass, label, us(w.P50), us(w.P90), us(w.P99), us(w.Max),
			st.Cache.Hits, st.Cache.Misses, st.Cache.Entries, bytesHuman(st.Cache.CostBytes))
		p50s = append(p50s, w.P50)
		// One stats read per family, windowed to that family's share of
		// this pass (the window parameter applies to every latency ring in
		// the payload, so each family needs its own request).
		for _, f := range famOrder {
			fst, err := fetchStats(addr, famCount[f])
			if err != nil {
				return err
			}
			fw, ok := fst.Families[f]
			if !ok {
				return fmt.Errorf("pass %d: /v1/stats has no %q family section", pass, f)
			}
			fmt.Printf("  family %-9s p50 %s  p90 %s  (%d solves total)\n",
				f, us(fw.Window.P50), us(fw.Window.P90), fw.Solves)
			famP50s[f] = append(famP50s[f], fw.Window.P50)
		}

		if pass == 1 {
			// Remember the cold answers; warm passes must reproduce them
			// bit for bit (the result-transparency contract, checked from
			// the client's side of the wire).
			baseline = makespans
		} else {
			for i := range makespans {
				if makespans[i] != baseline[i] {
					return fmt.Errorf("pass %d: %s returned makespan %.17g, cold pass returned %.17g — caching must be result-transparent",
						pass, names[i], makespans[i], baseline[i])
				}
			}
		}
	}

	if passes >= 2 {
		for _, f := range famOrder {
			ps := famP50s[f]
			cold, warm := ps[0], ps[len(ps)-1]
			fmt.Printf("family %-9s cold p50 %s -> warm p50 %s (%.1fx)\n",
				f, us(cold), us(warm), float64(cold)/float64(max64(warm, 1)))
		}
		cold, warm := p50s[0], p50s[len(p50s)-1]
		ratio := float64(cold) / float64(max64(warm, 1))
		verdict := "PASS"
		if ratio < speedup {
			verdict = "FAIL"
		}
		fmt.Printf("cold p50 %s -> warm p50 %s: %.1fx speedup (threshold %.1fx): %s\n",
			us(cold), us(warm), ratio, speedup, verdict)
		if verdict == "FAIL" {
			return fmt.Errorf("warm speedup %.2fx below %.1fx", ratio, speedup)
		}
	}
	return nil
}

// loadCorpus reads every instance JSON in dir (skipping *.schedule.json
// outputs), sorted by name for deterministic replay order, and tags each
// instance with the problem family it replays as.
func loadCorpus(dir string) ([]json.RawMessage, []string, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".schedule.json") {
			continue
		}
		// Churn traces are base+delta documents, not plain instances;
		// they replay through the -churn mode instead.
		if strings.HasPrefix(name, "churn_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no instance JSONs in %s", dir)
	}
	corpus := make([]json.RawMessage, len(names))
	fams := make([]string, len(names))
	for i, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, nil, err
		}
		corpus[i] = raw
		fams[i] = familyOf(raw)
	}
	return corpus, names, fams, nil
}

// familyOf picks the problem family an instance replays as: a
// non-uniform speeds array marks a related-machines instance (the bags
// family rejects it by contract), everything else replays as the
// default bags family.
func familyOf(raw json.RawMessage) string {
	var probe struct {
		Speeds []float64 `json:"speeds"`
	}
	if err := json.Unmarshal(raw, &probe); err == nil {
		for _, s := range probe.Speeds {
			if s != probe.Speeds[0] {
				return "related"
			}
		}
	}
	return "bags"
}

// waitHealthy polls GET /healthz briefly so `make serve` in one terminal
// and `make loadtest` in another don't race server startup.
func waitHealthy(addr string) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy (is `bagsched serve` running?): %v", addr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// replay posts every corpus instance once, at most concurrency in
// flight, and returns the makespans in corpus order. fams[i] is the
// family instance i is solved as.
func replay(addr string, corpus []json.RawMessage, fams []string, concurrency int, eps float64, backend string, noCache bool) ([]float64, error) {
	makespans := make([]float64, len(corpus))
	errs := make([]error, len(corpus))
	sem := make(chan struct{}, concurrency)
	var wg sync.WaitGroup
	for i, raw := range corpus {
		wg.Add(1)
		go func(i int, raw json.RawMessage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body := map[string]any{"instance": raw, "eps": eps, "no_cache": noCache, "family": fams[i]}
			if backend != "" {
				body["backend"] = backend
			}
			buf, err := json.Marshal(body)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := http.Post(addr+"/v1/solve", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var reply solveReply
			if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, reply.Error)
				return
			}
			makespans[i] = reply.Makespan
		}(i, raw)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return makespans, nil
}

// fetchStats reads the server's latency window over the last n solves.
func fetchStats(addr string, n int) (*statsReply, error) {
	resp, err := http.Get(fmt.Sprintf("%s/v1/stats?window=%d", addr, n))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	var st statsReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func us(v int64) string { return (time.Duration(v) * time.Microsecond).String() }

func bytesHuman(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
