// CI build-farm scheduling: jobs of the same test suite grab the same
// global resource (a database snapshot, a license server port), so at
// most one job per suite may run on a runner — a bag per suite. The farm
// wants the whole pipeline to finish as early as possible (makespan).
//
// The example reads nothing from disk: it synthesizes a pipeline, solves
// it exactly (small), with the EPTAS and with heuristics, and reports how
// close each lands to the true optimum.
//
//	go run ./examples/cicd
package main

import (
	"fmt"
	"log"
	"time"

	bagsched "repro"
)

// suite describes one test suite: per-shard runtime (minutes) and how
// many shards it fans out to.
type suite struct {
	name   string
	shards int
	mins   float64
}

func main() {
	suites := []suite{
		{"unit", 3, 4},
		{"integration", 2, 11},
		{"e2e-browser", 2, 13},
		{"migrations", 1, 7},
		{"lint", 1, 2},
		{"fuzz", 2, 6},
	}
	const runners = 4

	in := bagsched.NewInstance(runners)
	for bag, s := range suites {
		for k := 0; k < s.shards; k++ {
			in.AddJob(s.mins, bag)
		}
	}
	fmt.Printf("pipeline: %d shards across %d suites on %d runners\n\n",
		len(in.Jobs), len(suites), runners)

	ex, err := bagsched.SolveExact(in, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal wall time (exact B&B): %.0f min (proven=%v)\n", ex.Makespan, ex.Proven)

	res, err := bagsched.SolveEPTAS(in, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EPTAS(0.25):                   %.0f min (%.1f%% over optimal)\n",
		res.Makespan, 100*(res.Makespan/ex.Makespan-1))

	lpt, err := bagsched.SolveLPT(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LPT heuristic:                 %.0f min (%.1f%% over optimal)\n",
		lpt.Makespan(), 100*(lpt.Makespan()/ex.Makespan-1))

	fmt.Println("\nEPTAS runner assignment:")
	byRunner := res.Schedule.JobsOnMachine()
	for r, jobs := range byRunner {
		fmt.Printf("  runner %d (%.0f min):", r, res.Schedule.Loads()[r])
		for _, j := range jobs {
			fmt.Printf(" %s#%d(%.0fm)", suites[in.Jobs[j].Bag].name, j, in.Jobs[j].Size)
		}
		fmt.Println()
	}
}
