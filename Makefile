GO ?= go
COVER_FLOOR ?= 70

.PHONY: all build vet test race bench bench-smoke bench-json bench-compare pgo fuzz ci cover family-diff shard-diff resolve-diff plan-diff serve loadtest churn-replay slo-replay

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# family-diff is the problem-family differential suite under the race
# detector: bags solves stay bit-identical to the pre-seam pipeline
# across the fixture corpus and every oracle backend, identical matches
# bags on singleton-bag instances, related matches the brute-force
# oracle, and the shared memo never serves one family's entries to
# another. The full race/cover legs already include these tests; this
# target is the named gate CI (and bisects) can run in isolation.
family-diff:
	$(GO) test -race -run '^TestFamily' . ./internal/pipeline ./internal/server

# workers-diff is the parallel-oracle differential suite under the race
# detector: every committed fixture, every oracle backend, every
# problem family, at oracle worker counts 1/2/4/8, must produce
# bit-identical makespans, schedules and decision statistics (plus the
# intra-backend determinism tests of internal/milp and internal/oracle).
# The full race leg already includes these tests; this named gate lets
# CI and bisects point a speculation regression at itself.
workers-diff:
	$(GO) test -race -run 'TestOracleWorkers|TestCfgDPWorkers|TestBnBWorkers|TestParallel' . ./internal/oracle ./internal/milp

# shard-diff is the sharded-serving differential suite under the race
# detector: the consistent-hash router must be answer-invisible against
# a single replica under concurrent clients, and a memo snapshot
# export/import round trip must reproduce every fixture × backend ×
# family solve bit for bit with zero pipeline runs — plus the full
# shard, wire, memo and pipeline-codec package suites. The full race
# leg already includes these tests; this named gate lets CI and bisects
# attribute a serving-layer regression directly.
shard-diff:
	$(GO) test -race -run 'TestShardRouterDifferential|TestSnapshot' .
	$(GO) test -race ./internal/shard ./internal/wire ./internal/memo ./internal/pipeline

# resolve-diff is the incremental re-solve differential suite under the
# race detector: every committed churn trace replayed across every
# oracle backend × family × worker count must produce answers
# bit-identical to from-scratch solves of each post-delta instance while
# running strictly fewer pipeline executions over the trace, and the
# placement-repair fast path must either certify its schedule against
# the post-delta lower bound or fall back bit-identically — plus the
# delta/resolve/repair unit suites in core, placer, sched and workload
# and the /v1/resolve endpoint tests. The full race leg already includes
# these tests; this named gate lets CI and bisects attribute a
# warm-start regression directly.
resolve-diff:
	$(GO) test -race -run 'TestResolve|TestDelta|TestRepair|TestGenerateChurn|TestTrace' \
		. ./internal/core ./internal/placer ./internal/sched ./internal/workload ./internal/server

# plan-diff is the adaptive-solving differential suite under the race
# detector: with the planner attached but adaptive mode off, every
# fixture × backend × family solve must stay bit-identical to a plain
# solve (the cost model is observe-only), and with a trained model a
# tight deadline must land on exactly the heuristic rung the ladder
# promises, bound included — plus the internal/plan determinism and
# monotonicity table tests and the server's adaptive endpoint tests.
# The full race leg already includes these tests; this named gate lets
# CI and bisects attribute an adaptive-path regression directly.
plan-diff:
	$(GO) test -race -run 'TestPlan|TestSpec|TestAdaptive' . ./internal/core ./internal/server
	$(GO) test -race ./internal/plan

# bench runs every benchmark in the repository, including the internal
# package benchmarks (pattern, placer, pipeline, milp, numeric).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# bench-smoke runs every benchmark exactly once so CI notices when a
# benchmark rots (fails to compile or crashes) without paying for real
# measurements.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# bench-json snapshots the EPTAS hot-path benchmarks to BENCH_<date>.json,
# extending the performance trajectory. See cmd/benchjson.
bench-json:
	$(GO) run ./cmd/benchjson

# bench-compare runs the tracked hot-path benchmarks fresh and diffs them
# against the latest committed BENCH_*.json snapshot, failing on a >25%
# ns/op regression. CI runs it as a non-blocking report step (benchmark
# noise on shared runners must not fail the build).
bench-compare:
	$(GO) run ./cmd/benchjson -compare -benchtime 3x

# pgo regenerates the committed profile-guided-optimization profile,
# default.pgo, from a CPU profile of the hot-path benchmark suite (the
# same families benchjson snapshots). cmd/benchjson builds with the
# committed profile whenever it is present — go's -pgo=auto only applies
# default.pgo to main packages, so the tool passes the flag explicitly —
# which keeps snapshots, bench-compare in CI and production builds
# measuring the same optimized binary. Rerun after large hot-path
# refactors; the profile is data, not code, so a stale one degrades
# gracefully to smaller wins.
pgo:
	$(GO) test -run '^$$' -bench 'Benchmark(Ex[A-Z]|Oracle|Family|Codec|Resolve|Planner)' \
		-cpuprofile pgo.cpu.out .
	mv pgo.cpu.out default.pgo
	rm -f repro.test bagsched.test

# fuzz runs the native fuzz target for a short burst.
fuzz:
	$(GO) test -fuzz FuzzSolveEPTAS -fuzztime 30s .

# cover is the CI coverage leg: the race-mode test run with an atomic
# coverage profile, failing when total statement coverage drops below
# COVER_FLOOR percent. The profile lands in coverage.out (uploaded as a
# CI artifact).
cover:
	$(GO) test -race -covermode=atomic -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3 + 0 < floor) { \
			printf "coverage %.1f%% is below the %d%% floor\n", $$3, floor; exit 1 } }'

# serve runs the long-running solve service on :8080; pair with
# `make loadtest` in another terminal. See the README's Serving section.
serve:
	$(GO) run ./cmd/bagsched serve -addr :8080

# loadtest replays the testdata corpus against a running `make serve`
# and reports the cold-vs-warm p50 from GET /v1/stats, failing unless
# the warm pass is at least 2x faster.
loadtest:
	$(GO) run ./examples/service -addr http://127.0.0.1:8080 -dir testdata

# churn-replay replays the committed churn traces against a running
# `make serve` through POST /v1/resolve, checks every incremental answer
# bit for bit against a cache-bypassed from-scratch solve, and fails
# unless incremental p50 beats from-scratch p50 by at least 5x on the
# low-churn trace. See the README's Incremental re-solve section.
churn-replay:
	$(GO) run ./examples/service -addr http://127.0.0.1:8080 -churn testdata

# slo-replay runs the SLO replay demo fully in process (it spins up its
# own server, unlike loadtest/churn-replay which need `make serve`):
# calibrate the latency cost model on the corpus, replay a Zipf trace of
# tight/medium/loose deadlines adaptively and at fixed eps, and fail
# unless the adaptive pass hits >= 95% of deadlines and beats the
# baseline. See the README's Adaptive solving section.
slo-replay:
	$(GO) run ./examples/service -slo -dir testdata -eps 0.25 -requests 120 -max-jobs 64

# ci is what .github/workflows/ci.yml runs (plus a non-blocking
# bench-compare step); the coverage matrix leg swaps race for cover.
ci: vet build race family-diff workers-diff shard-diff resolve-diff plan-diff bench-smoke
