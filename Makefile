GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-smoke runs every benchmark exactly once so CI notices when a
# benchmark rots (fails to compile or crashes) without paying for real
# measurements.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# bench-json snapshots the EPTAS hot-path benchmarks to BENCH_<date>.json,
# extending the performance trajectory. See cmd/benchjson.
bench-json:
	$(GO) run ./cmd/benchjson

# ci is what .github/workflows/ci.yml runs.
ci: vet build race bench-smoke
