GO ?= go

.PHONY: all build vet test race bench bench-smoke bench-json bench-compare fuzz ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark in the repository, including the internal
# package benchmarks (pattern, placer, pipeline, milp, numeric).
bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# bench-smoke runs every benchmark exactly once so CI notices when a
# benchmark rots (fails to compile or crashes) without paying for real
# measurements.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# bench-json snapshots the EPTAS hot-path benchmarks to BENCH_<date>.json,
# extending the performance trajectory. See cmd/benchjson.
bench-json:
	$(GO) run ./cmd/benchjson

# bench-compare runs the tracked hot-path benchmarks fresh and diffs them
# against the latest committed BENCH_*.json snapshot, failing on a >25%
# ns/op regression. CI runs it as a non-blocking report step (benchmark
# noise on shared runners must not fail the build).
bench-compare:
	$(GO) run ./cmd/benchjson -compare -benchtime 3x

# fuzz runs the native fuzz target for a short burst.
fuzz:
	$(GO) test -fuzz FuzzSolveEPTAS -fuzztime 30s .

# ci is what .github/workflows/ci.yml runs (plus a non-blocking
# bench-compare step).
ci: vet build race bench-smoke
