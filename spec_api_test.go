package bagsched

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/workload"
)

func specInstance(t testing.TB) *Instance {
	t.Helper()
	return workload.MustGenerate(workload.Spec{
		Family: "geometric", Machines: 4, Jobs: 16, Bags: 6, Seed: 21,
	})
}

// TestSpecMatchesOptions: the struct form and the variadic form of the
// same configuration produce bit-identical results.
func TestSpecMatchesOptions(t *testing.T) {
	in := specInstance(t)
	viaOpts, err := SolveEPTAS(in, 0.3,
		WithBackend(BackendCfgDP), WithOracleWorkers(2), WithMaxGuesses(30))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Backend: BackendCfgDP, OracleWorkers: 2, MaxGuesses: 30}
	viaSpec, err := SolveEPTAS(in, 0.3, spec.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaOpts.Schedule.Machine, viaSpec.Schedule.Machine) {
		t.Fatal("Spec.Options diverged from the equivalent With* options")
	}
	if !reflect.DeepEqual(viaOpts.Stats.Decision(), viaSpec.Stats.Decision()) {
		t.Fatal("Spec.Options decision stats diverged")
	}
}

// TestSpecAdaptiveFlow: the public adaptive surface end to end — train
// a model, set a tight deadline, get the degraded heuristic answer with
// its bound; then refuse on a quality floor.
func TestSpecAdaptiveFlow(t *testing.T) {
	in := specInstance(t)
	m := NewPlanModel()
	size := plan.SizeClass(len(in.Jobs))
	for _, eps := range append([]float64{0.3}, plan.EpsGrid...) {
		m.Observe(plan.Key{Family: "bags", Size: size, Rung: plan.RungEPTAS,
			EpsIdx: plan.EpsIndex(eps), Backend: "bnb", Workers: 1}, 250*time.Millisecond)
	}

	res, err := SolveEPTAS(in, 0.3,
		WithPlanner(m), WithAdaptive(), WithDeadline(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality.Rung != plan.RungLPT || !res.Quality.Degraded {
		t.Fatalf("tight deadline should land on the LPT rung: %+v", res.Quality)
	}
	if res.Makespan > res.Quality.Bound*res.LowerBound {
		t.Fatalf("answer violates its reported bound: %g > %g*%g",
			res.Makespan, res.Quality.Bound, res.LowerBound)
	}

	_, err = SolveEPTAS(in, 0.3, WithPlanner(m), WithAdaptive(),
		WithDeadline(5*time.Millisecond), WithQualityFloor(1.3))
	if !errors.Is(err, ErrUnattainable) {
		t.Fatalf("quality floor under a tight deadline: want ErrUnattainable, got %v", err)
	}
}

// TestPlanModelSnapshotPublic: the export/import wrappers round-trip a
// model through the public API.
func TestPlanModelSnapshotPublic(t *testing.T) {
	m := NewPlanModel()
	m.Observe(plan.Key{Family: "bags", Size: 4, Rung: plan.RungEPTAS,
		EpsIdx: plan.EpsIndex(0.3), Backend: "bnb", Workers: 1}, 10*time.Millisecond)
	var buf bytes.Buffer
	if err := ExportPlanModel(m, &buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewPlanModel()
	if err := ImportPlanModel(fresh, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Snapshot(); st.Cells != 1 {
		t.Fatalf("snapshot round trip lost cells: %+v", st)
	}
}
