// Command benchgen generates deterministic workload instances as JSON
// files for use with cmd/bagsched, and churn traces (a base instance
// plus a stream of deltas) for the incremental re-solve tests, the
// resolve benchmarks and the churn-replay driver.
//
// Usage:
//
//	benchgen -family uniform -machines 8 -jobs 40 -bags 10 -seed 1 -out inst.json
//	benchgen -family bimodal -machines 6 -jobs 24 -bags 8 -seed 11 \
//	    -churn 12 -churn-frac 0.08 -churn-jitter 0.02 -churn-seed 21 -out trace.json
//	benchgen -list
//
// With -churn N the output is a sched.Trace document ({"base": ...,
// "steps": [...]}) of N deltas; -churn-frac sets the fraction of jobs
// each step edits, -churn-jitter the relative resize magnitude, and
// -churn-structural mixes arrivals, departures, bag moves and machine
// changes into the stream (the default is resize-only, the low-churn
// regime where incremental re-solves reuse the most prior work).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	family := flag.String("family", "uniform", "workload family (see -list)")
	machines := flag.Int("machines", 8, "machine count")
	jobs := flag.Int("jobs", 40, "job count")
	bags := flag.Int("bags", 10, "bag count")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file, or - for stdout")
	list := flag.Bool("list", false, "list workload families and exit")
	churn := flag.Int("churn", 0, "emit a churn trace of this many delta steps instead of a plain instance")
	churnFrac := flag.Float64("churn-frac", 0.1, "fraction of jobs each churn step edits")
	churnJitter := flag.Float64("churn-jitter", 0.05, "relative size change bound of churn resizes")
	churnStructural := flag.Bool("churn-structural", false, "mix arrivals/departures/bag moves/machine changes into the churn stream")
	churnSeed := flag.Int64("churn-seed", 1, "random seed of the churn stream (independent of -seed)")
	flag.Parse()

	if *list {
		for _, f := range workload.Families() {
			fmt.Println(f)
		}
		for _, f := range workload.RelatedFamilies() {
			fmt.Println(f)
		}
		return
	}
	spec := workload.Spec{
		Family:   workload.Family(*family),
		Machines: *machines,
		Jobs:     *jobs,
		Bags:     *bags,
		Seed:     *seed,
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	if *churn > 0 {
		var tr *sched.Trace
		tr, err = workload.GenerateChurn(workload.ChurnSpec{
			Base:       spec,
			Steps:      *churn,
			Frac:       *churnFrac,
			Jitter:     *churnJitter,
			Structural: *churnStructural,
			Seed:       *churnSeed,
		})
		if err == nil {
			err = sched.WriteTrace(w, tr)
		}
	} else {
		var in *sched.Instance
		in, err = workload.Generate(spec)
		if err == nil {
			err = sched.WriteInstance(w, in)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}
