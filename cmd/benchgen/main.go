// Command benchgen generates deterministic workload instances as JSON
// files for use with cmd/bagsched.
//
// Usage:
//
//	benchgen -family uniform -machines 8 -jobs 40 -bags 10 -seed 1 -out inst.json
//	benchgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	family := flag.String("family", "uniform", "workload family (see -list)")
	machines := flag.Int("machines", 8, "machine count")
	jobs := flag.Int("jobs", 40, "job count")
	bags := flag.Int("bags", 10, "bag count")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file, or - for stdout")
	list := flag.Bool("list", false, "list workload families and exit")
	flag.Parse()

	if *list {
		for _, f := range workload.Families() {
			fmt.Println(f)
		}
		for _, f := range workload.RelatedFamilies() {
			fmt.Println(f)
		}
		return
	}
	in, err := workload.Generate(workload.Spec{
		Family:   workload.Family(*family),
		Machines: *machines,
		Jobs:     *jobs,
		Bags:     *bags,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := sched.WriteInstance(w, in); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}
