// Command benchjson runs the repository's benchmark suite and writes the
// results as a JSON snapshot, seeding the performance trajectory: each
// run produces a BENCH_<date>.json whose ns/op numbers can be diffed
// against earlier snapshots to catch hot-path regressions.
//
// Usage:
//
//	benchjson [-bench regexp] [-benchtime 1x] [-count 1] [-out file]
//
// By default it runs the EPTAS hot-path benchmarks (the EX suite of
// bench_test.go) once each and writes BENCH_<YYYY-MM-DD>.json in the
// current directory. It shells out to "go test -bench", so it needs the
// go toolchain — the same requirement as building the repo.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"time"
)

// defaultBench selects the EPTAS hot paths: the EX experiment families
// (BenchmarkExF1, ExT*, ExS*, ExL*, ExB*, ExA* — an uppercase letter
// after "Ex" keeps BenchmarkExactSolver and other substrate
// micro-benchmarks out of the default snapshot).
const defaultBench = "BenchmarkEx[A-Z]"

// Snapshot is the file format of one benchmark run.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Bench     string   `json:"bench"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

// Result is one benchmark line. The allocation fields are always present
// (-benchmem is always passed), so a genuine 0 B/op survives in the JSON
// and trajectory diffs can rely on the columns existing.
type Result struct {
	Name     string  `json:"name"`
	Iters    int     `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"b_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

// benchLine matches "BenchmarkName-8  10  123456 ns/op  78 B/op  9 allocs/op"
// (the -8 GOMAXPROCS suffix and the allocation columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration per benchmark)")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	flag.Parse()

	if err := run(*bench, *benchtime, *count, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime string, count int, out string) error {
	date := time.Now().Format("2006-01-02")
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", date)
	}

	cmd := exec.Command("go", "test",
		"-run", "^$",
		"-bench", bench,
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		"-benchmem",
		".")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}

	snap := Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     bench,
		BenchTime: benchtime,
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Iters: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			r.AllocsOp, _ = strconv.ParseFloat(m[5], 64)
		}
		snap.Results = append(snap.Results, r)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	if len(snap.Results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(snap)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("wrote %d results to %s\n", len(snap.Results), out)
	return nil
}
