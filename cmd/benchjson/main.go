// Command benchjson runs the repository's benchmark suite and writes the
// results as a JSON snapshot, seeding the performance trajectory: each
// run produces a BENCH_<date>.json whose ns/op numbers can be diffed
// against earlier snapshots to catch hot-path regressions.
//
// Usage:
//
//	benchjson [-bench regexp] [-benchtime 1x] [-count 1] [-out file]
//	benchjson -compare [-benchtime 3x] [-count 1] [-threshold 1.25]
//
// By default it runs the EPTAS hot-path benchmarks (the EX suite of
// bench_test.go) once each and writes BENCH_<YYYY-MM-DD>.json in the
// current directory. The parallel-oracle scaling family
// (BenchmarkOracleParallel*) runs in a dedicated pass at -cpu 1,2,4,8,
// and the GOMAXPROCS value of each line — the worker-lane count — is
// recorded as part of the result identity. With -compare it instead
// runs the tracked hot-path benchmarks fresh (the parallel family again
// across its -cpu sweep, matched point by point), diffs their ns/op
// against the latest committed BENCH_*.json snapshot, writes no file,
// and exits non-zero when any tracked benchmark regressed by more than
// the threshold (default 25%).
// It shells out to "go test -bench", so it needs the go toolchain — the
// same requirement as building the repo.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// defaultBench selects the EPTAS hot paths: the EX experiment families
// (BenchmarkExF1, ExT*, ExS*, ExL*, ExB*, ExA* — an uppercase letter
// after "Ex" keeps BenchmarkExactSolver and other substrate
// micro-benchmarks out of the default snapshot), the oracle-backend
// benchmarks (BenchmarkOracleBnB/CfgDP/Portfolio), the sibling
// problem families (BenchmarkFamilyRelated/Identical), the serving
// codecs (BenchmarkCodec*: snapshot export/import and wire decode —
// the per-request and per-warm-start overheads of the sharded
// service) and the incremental re-solve replays
// (BenchmarkResolve{LowChurn,HighChurn,FromScratch}: warm churn-trace
// replay against its cold baseline) and the adaptive-solving admission
// overhead (BenchmarkPlannerDecision: one cost-model Decide call, the
// fixed per-request cost of SLO-aware serving).
const defaultBench = "Benchmark(Ex[A-Z]|Oracle|Family|Codec|Resolve|Planner)"

// The BenchmarkOracleParallel family scales its worker-lane count with
// GOMAXPROCS, so its numbers are only meaningful at a pinned -cpu value:
// snapshots and compares run it in a dedicated pass over parallelCPUs
// and record the lane count in each result's identity. (It is excluded
// from the main pass, where GOMAXPROCS is whatever the machine has.)
const (
	parallelBench = "BenchmarkOracleParallel"
	parallelCPUs  = "1,2,4,8"
)

// pgoProfile is the committed profile-guided-optimization profile at the
// repository root; see the pgo target in the Makefile.
const pgoProfile = "default.pgo"

// tracked lists the hot-path benchmarks bench-compare gates on: the
// pattern-enumeration stage, the end-to-end EPTAS solves that dominate
// production cost, the speculative search, the three oracle backends on
// the DP-favoring few-patterns fixture, and one end-to-end solve per
// sibling problem family (related on the committed speed fixture,
// identical on the bimodal workload), the three churn-trace replays
// (warm low/high churn plus the from-scratch baseline) and the
// adaptive planner's per-request decision overhead.
// Benchmarks outside this list still land in snapshots but never fail
// the comparison.
var tracked = []string{
	"BenchmarkExF1AdversarialEPTAS",
	"BenchmarkExL6PatternEnum_Eps050",
	"BenchmarkExL6PatternEnum_Eps040",
	"BenchmarkExL7PipelineWithRepairs",
	"BenchmarkExT2ScaleN080",
	"BenchmarkExS2SpeculationOn",
	"BenchmarkOracleBnB",
	"BenchmarkOracleCfgDP",
	"BenchmarkOraclePortfolio",
	"BenchmarkFamilyRelated",
	"BenchmarkFamilyIdentical",
	"BenchmarkOracleParallelBnBLarge",
	"BenchmarkOracleParallelCfgDPLarge",
	"BenchmarkOracleParallelSolveLarge",
	"BenchmarkCodecSnapshotExport",
	"BenchmarkCodecSnapshotImport",
	"BenchmarkCodecWireDecodeSolveRequest",
	"BenchmarkResolveLowChurn",
	"BenchmarkResolveHighChurn",
	"BenchmarkResolveFromScratch",
	"BenchmarkPlannerDecision",
}

// Snapshot is the file format of one benchmark run.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Bench     string   `json:"bench"`
	BenchTime string   `json:"benchtime"`
	PGO       bool     `json:"pgo,omitempty"`
	Results   []Result `json:"results"`
}

// Result is one benchmark line. The allocation fields are always present
// (-benchmem is always passed), so a genuine 0 B/op survives in the JSON
// and trajectory diffs can rely on the columns existing. CPU is the
// GOMAXPROCS suffix of the line (the -8 in "BenchmarkFoo-8"); it is part
// of the result's identity — the parallel-oracle benchmarks scale their
// worker lanes with GOMAXPROCS, so the same name at different -cpu
// values measures different configurations. 0 means the line carried no
// suffix (GOMAXPROCS was 1 and -cpu was not passed), which comparisons
// treat as a wildcard so snapshots predating this field stay usable.
type Result struct {
	Name     string  `json:"name"`
	CPU      int     `json:"cpu,omitempty"`
	Iters    int     `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"b_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

// key is the identity a result is deduplicated and compared under.
func (r Result) key() string { return fmt.Sprintf("%s-%d", r.Name, r.CPU) }

// benchLine matches "BenchmarkName-8  10  123456 ns/op  78 B/op  9 allocs/op"
// (the -8 GOMAXPROCS suffix and the allocation columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	bench := flag.String("bench", defaultBench, "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value (1x = one iteration per benchmark)")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	compare := flag.Bool("compare", false, "compare a fresh run of the tracked benchmarks against the latest committed BENCH_*.json instead of writing a snapshot")
	threshold := flag.Float64("threshold", 1.25, "ns/op ratio above which -compare reports a regression")
	flag.Parse()

	var err error
	if *compare {
		err = runCompare(*benchtime, *count, *threshold)
	} else {
		err = run(*bench, *benchtime, *count, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runBench shells out to go test -bench and parses the result lines.
// With count > 1 the minimum ns/op per benchmark is kept (the most
// noise-resistant statistic for regression gating). A non-empty cpus
// string is passed through as -cpu, making GOMAXPROCS — and with it the
// parallel oracle's worker-lane count — part of each result's identity.
func runBench(bench, benchtime string, count int, cpus string) ([]Result, error) {
	args := []string{"test",
		"-run", "^$",
		"-bench", bench,
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		"-benchmem",
	}
	if cpus != "" {
		args = append(args, "-cpu", cpus)
	}
	// Build with the committed profile when one exists (make pgo
	// regenerates it), so snapshots and compares measure the binary that
	// production builds would ship. go's auto mode only applies
	// default.pgo to main packages, hence the explicit flag.
	if _, err := os.Stat(pgoProfile); err == nil {
		args = append(args, "-pgo="+pgoProfile)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	best := make(map[string]Result)
	var order []string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[3])
		ns, _ := strconv.ParseFloat(m[4], 64)
		r := Result{Name: m[1], Iters: iters, NsPerOp: ns}
		if m[2] != "" {
			r.CPU, _ = strconv.Atoi(m[2])
		}
		if m[5] != "" {
			r.BPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			r.AllocsOp, _ = strconv.ParseFloat(m[6], 64)
		}
		prev, seen := best[r.key()]
		if !seen {
			order = append(order, r.key())
			best[r.key()] = r
		} else if r.NsPerOp < prev.NsPerOp {
			best[r.key()] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	results := make([]Result, 0, len(order))
	for _, k := range order {
		results = append(results, best[k])
	}
	return results, nil
}

func run(bench, benchtime string, count int, out string) error {
	date := time.Now().Format("2006-01-02")
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", date)
	}
	results, err := runBench(bench, benchtime, count, "")
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}
	// The parallel-oracle family only means something at a pinned lane
	// count: drop whatever the main pass measured at ambient GOMAXPROCS
	// and re-run it across the tracked -cpu sweep.
	kept := results[:0]
	for _, r := range results {
		if !strings.HasPrefix(r.Name, parallelBench) {
			kept = append(kept, r)
		}
	}
	results = kept
	par, err := runBench("^"+parallelBench, benchtime, count, parallelCPUs)
	if err != nil {
		return err
	}
	results = append(results, par...)
	snap := Snapshot{
		Date:      date,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     bench,
		BenchTime: benchtime,
		Results:   results,
	}
	if _, err := os.Stat(pgoProfile); err == nil {
		snap.PGO = true
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	werr := enc.Encode(snap)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	fmt.Printf("wrote %d results to %s\n", len(snap.Results), out)
	return nil
}

// latestSnapshot locates the newest committed BENCH_*.json by name (the
// date-stamped names sort chronologically).
func latestSnapshot() (string, *Snapshot, error) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", nil, err
	}
	if len(files) == 0 {
		return "", nil, fmt.Errorf("no BENCH_*.json snapshot found; run benchjson (or make bench-json) first")
	}
	sort.Strings(files)
	path := files[len(files)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	return path, &snap, nil
}

// lookup resolves a benchmark identity in a result set: the exact
// (name, cpu) pair first, then the cpu-less form (snapshots written
// before CPU joined the identity, or lines from a 1-core run), then —
// for results that are the only entry under their name — any cpu, so
// non-parallel benchmarks stay comparable across machines with
// different core counts.
func lookup(set map[string]Result, byName map[string][]Result, name string, cpu int) (Result, bool) {
	if r, ok := set[Result{Name: name, CPU: cpu}.key()]; ok {
		return r, true
	}
	if r, ok := set[Result{Name: name}.key()]; ok {
		return r, true
	}
	if rs := byName[name]; len(rs) == 1 {
		return rs[0], true
	}
	return Result{}, false
}

func index(results []Result) (map[string]Result, map[string][]Result) {
	set := make(map[string]Result, len(results))
	byName := make(map[string][]Result)
	for _, r := range results {
		set[r.key()] = r
		byName[r.Name] = append(byName[r.Name], r)
	}
	return set, byName
}

// runCompare diffs a fresh run of the tracked benchmarks against the
// latest committed snapshot and fails on a >threshold ns/op regression.
// The parallel-oracle family is compared point by point along its -cpu
// sweep; everything else at whatever GOMAXPROCS both runs used.
func runCompare(benchtime string, count int, threshold float64) error {
	path, base, err := latestSnapshot()
	if err != nil {
		return err
	}
	baseSet, baseByName := index(base.Results)

	var serial, parallel []string
	for _, name := range tracked {
		if strings.HasPrefix(name, parallelBench) {
			parallel = append(parallel, name)
		} else {
			serial = append(serial, name)
		}
	}
	fresh, err := runBench("^("+strings.Join(serial, "|")+")$", benchtime, count, "")
	if err != nil {
		return err
	}
	if len(parallel) > 0 {
		par, err := runBench("^("+strings.Join(parallel, "|")+")$", benchtime, count, parallelCPUs)
		if err != nil {
			return err
		}
		fresh = append(fresh, par...)
	}
	curSet, curByName := index(fresh)

	fmt.Printf("\nbench-compare against %s (threshold %.0f%%):\n", path, (threshold-1)*100)
	var regressions []string
	compareOne := func(name string, cpu int) {
		label := name
		if cpu > 0 {
			label = fmt.Sprintf("%s-%d", name, cpu)
		}
		old, okOld := lookup(baseSet, baseByName, name, cpu)
		now, okNow := lookup(curSet, curByName, name, cpu)
		switch {
		case !okNow:
			// A tracked benchmark that no longer runs is itself a
			// regression — this is how the gate notices rotted benchmarks.
			regressions = append(regressions, fmt.Sprintf("%s: missing from fresh run", label))
		case !okOld:
			fmt.Printf("  %-36s %12.0f ns/op (new, no baseline)\n", label, now.NsPerOp)
		default:
			ratio := now.NsPerOp / old.NsPerOp
			verdict := "ok"
			if ratio > threshold {
				verdict = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx)", label, old.NsPerOp, now.NsPerOp, ratio))
			}
			fmt.Printf("  %-36s %12.0f -> %10.0f ns/op  %5.2fx  %s\n", label, old.NsPerOp, now.NsPerOp, ratio, verdict)
		}
	}
	for _, name := range serial {
		compareOne(name, 0)
	}
	for _, name := range parallel {
		for _, cpu := range strings.Split(parallelCPUs, ",") {
			c, _ := strconv.Atoi(cpu)
			compareOne(name, c)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d tracked benchmark(s) regressed:\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Println("no tracked regressions")
	return nil
}
