// Command experiments regenerates the EX evaluation tables defined in
// DESIGN.md — one experiment per theorem, lemma and figure of the paper.
//
// Usage:
//
//	experiments [-ex all|F1|F2|F3|T1|T2|S1|L1|L6|L7|L8|L9|L11|B1|A1] [-quick] [-seeds N]
//
// Output is GitHub-flavoured markdown on stdout, suitable for pasting
// into EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	ex := flag.String("ex", "all", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "smaller instances and fewer seeds")
	seeds := flag.Int("seeds", 0, "override the number of seeds per cell")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seeds: *seeds}
	ids := experiments.IDs()
	if *ex != "all" {
		ids = strings.Split(*ex, ",")
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(table.Markdown())
		fmt.Printf("_(generated in %.1fs)_\n\n", time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
