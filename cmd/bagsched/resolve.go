package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	bagsched "repro"
	"repro/internal/sched"
)

// runResolve is the `bagsched resolve` subcommand: solve an instance,
// apply a delta, and re-solve incrementally, printing how much of the
// from-scratch work the warm start avoided. It is the command-line
// counterpart of POST /v1/resolve — the CLI is stateless between runs,
// so it performs the prior solve itself and chains the re-solve off it
// in-process (which also exercises the memo carry-over the service gets
// from its shared cache).
func runResolve(args []string) error {
	fs := flag.NewFlagSet("resolve", flag.ContinueOnError)
	eps := fs.Float64("eps", 0.5, "accuracy parameter")
	backendName := fs.String("backend", "bnb", "oracle backend: bnb, cfgdp or portfolio")
	familyName := fs.String("family", "bags", "problem family: bags, identical or related")
	inPath := fs.String("in", "-", "prior instance JSON file, or - for stdin")
	deltaPath := fs.String("delta", "", "delta JSON file, or - for stdin (required; see the Delta grammar in the README)")
	outPath := fs.String("out", "", "write the post-delta schedule JSON here")
	repair := fs.Bool("repair", false, "enable the placement-repair fast path (certificate-checked, not bit-identical)")
	compare := fs.Bool("compare", false, "also solve the post-delta instance from scratch and verify bit-identity")
	oracleWorkers := fs.Int("oracle-workers", 0, "concurrent lanes per oracle solve (<=1 = sequential, results identical)")
	timeout := fs.Duration("timeout", 0, "abort after this long (covers prior solve and re-solve; 0 = no limit)")
	verbose := fs.Bool("v", false, "print per-machine loads of the re-solved schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *deltaPath == "" {
		return fmt.Errorf("-delta is required")
	}
	if *inPath == "-" && *deltaPath == "-" {
		return fmt.Errorf("-in and -delta cannot both read stdin")
	}

	backend, err := bagsched.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	fam, err := bagsched.ParseFamily(*familyName)
	if err != nil {
		return err
	}

	in, err := readInstanceFile(*inPath)
	if err != nil {
		return err
	}
	delta, err := readDeltaFile(*deltaPath)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []bagsched.Option{
		bagsched.WithBackend(backend), bagsched.WithFamily(fam),
		bagsched.WithOracleWorkers(*oracleWorkers),
	}
	priorStart := time.Now()
	prior, err := bagsched.SolveEPTASContext(ctx, in, *eps, opts...)
	if err != nil {
		return fmt.Errorf("prior solve: %w", err)
	}
	priorElapsed := time.Since(priorStart)
	fmt.Printf("prior: makespan %.6f  guesses %d  pipeline runs %d  elapsed %s\n",
		prior.Makespan, prior.Stats.Guesses, prior.Stats.PipelineRuns, priorElapsed)

	var resolveOpts []bagsched.Option
	if *repair {
		resolveOpts = append(resolveOpts, bagsched.WithPlacementRepair())
	}
	warmStart := time.Now()
	res, err := bagsched.ResolveEPTASContext(ctx, prior, *delta, resolveOpts...)
	if err != nil {
		return fmt.Errorf("resolve: %w", err)
	}
	warmElapsed := time.Since(warmStart)

	fmt.Printf("delta: %d job edit(s), %+d machine(s)\n", delta.Jobs(), delta.Machines)
	fmt.Printf("resolved: makespan %.6f (%.2fx lower bound)  elapsed %s\n",
		res.Makespan, res.Makespan/res.LowerBound, warmElapsed)
	if res.Stats.Repaired {
		fmt.Printf("repaired: kept %d, moved %d, displaced %d job(s); no search ran\n",
			res.Stats.RepairStats.Kept, res.Stats.RepairStats.Moved, res.Stats.RepairStats.Displaced)
	} else {
		fmt.Printf("warm search: guesses %d  pipeline runs %d  cache hits %d\n",
			res.Stats.Guesses, res.Stats.PipelineRuns, res.Stats.CacheHits)
	}

	if *compare {
		post, _, err := delta.Apply(in)
		if err != nil {
			return err
		}
		coldStart := time.Now()
		cold, err := bagsched.SolveEPTASContext(ctx, post, *eps, opts...)
		if err != nil {
			return fmt.Errorf("from-scratch solve: %w", err)
		}
		coldElapsed := time.Since(coldStart)
		fmt.Printf("from scratch: makespan %.6f  guesses %d  pipeline runs %d  elapsed %s\n",
			cold.Makespan, cold.Stats.Guesses, cold.Stats.PipelineRuns, coldElapsed)
		switch {
		case res.Stats.Repaired:
			fmt.Printf("repair certificate: %.6f <= (1+%g) * %.6f\n", res.Makespan, *eps, res.LowerBound)
		case res.Makespan != cold.Makespan:
			return fmt.Errorf("incremental makespan %.17g differs from from-scratch %.17g", res.Makespan, cold.Makespan)
		default:
			fmt.Printf("bit-identical to from-scratch; warm elapsed %.2fx faster\n",
				coldElapsed.Seconds()/warmElapsed.Seconds())
		}
	}

	if err := res.Schedule.Validate(); err != nil {
		return fmt.Errorf("re-solved schedule is invalid: %w", err)
	}
	if *verbose {
		for m, load := range res.Schedule.Loads() {
			fmt.Printf("  machine %2d: load %.6f\n", m, load)
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sched.WriteSchedule(f, res.Schedule); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", *outPath)
	}
	return nil
}

func readInstanceFile(path string) (*sched.Instance, error) {
	if path == "-" {
		return sched.ReadInstance(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sched.ReadInstance(f)
}

func readDeltaFile(path string) (*sched.Delta, error) {
	if path == "-" {
		return sched.ReadDelta(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sched.ReadDelta(f)
}
