// Command bagsched solves bag-constrained scheduling instances and prints
// schedules and statistics.
//
// Usage:
//
//	bagsched [-algo eptas|baglpt|lpt|greedy|roundrobin|exact|daswiese]
//	         [-eps 0.5] [-backend bnb|cfgdp|portfolio]
//	         [-family bags|identical|related]
//	         [-in instance.json] [-out schedule.json]
//	         [-oracle-workers N] [-timeout 30s] [-v]
//	bagsched -batch dir [-eps 0.5] [-backend ...] [-family ...]
//	         [-workers N] [-oracle-workers N] [-timeout 5m]
//	bagsched serve [-addr :8080] [-workers N] [-cache-bytes N]
//	         [-backend bnb] [-eps 0.5] [-queue-depth N] [-max-timeout 2m]
//	         [-max-oracle-workers N] [-snapshot cache.bgms]
//	         [-plan-snapshot plan.json]
//	bagsched route -replicas http://h1:8080,http://h2:8080[,...]
//	         [-addr :8090] [-vnodes 64] [-policy hash|random] [-eps 0.5]
//	         [-health-interval 1s]
//	bagsched resolve -delta delta.json [-in instance.json] [-eps 0.5]
//	         [-backend ...] [-family ...] [-repair] [-compare]
//	         [-out schedule.json] [-oracle-workers N] [-timeout 30s] [-v]
//
// In batch mode every instance JSON in dir (files matching *.json,
// excluding earlier *.schedule.json outputs) is solved with the EPTAS on
// a worker pool, and each schedule is written alongside its instance as
// <name>.schedule.json.
//
// The serve subcommand runs the long-running solve service: an HTTP/JSON
// API (POST /v1/solve, POST /v1/batch, GET /v1/stats, GET /healthz, GET
// /metrics) sharing one bounded cross-request guess-memo cache and one
// admission-controlled worker pool across all requests. With -snapshot
// the cache is persisted to the given file on graceful shutdown and
// warm-started from it on boot (corrupt or version-mismatched snapshots
// are skipped with a warning, never fatal). See internal/server and the
// README's Serving and "Sharded serving" sections.
//
// The resolve subcommand solves an instance, applies a delta (jobs
// added/removed/resized/re-bagged, machines added/removed) and
// re-solves incrementally, warm-started from the prior solve; -compare
// additionally solves the post-delta instance from scratch and verifies
// the incremental answer is bit-identical, and -repair enables the
// placement-repair fast path. See the README's "Incremental re-solve"
// section for the delta grammar.
//
// The route subcommand fronts N serve replicas with the consistent-hash
// shard router (internal/shard): signature-equivalent requests always
// land on the replica whose cache already holds the entry, with health
// checks and retry/backoff to a fallback replica. It exposes the same
// HTTP surface as a single replica plus router stats and metrics.
//
// -backend selects the EPTAS's integer-programming oracle: LP-simplex
// branch-and-bound (bnb, the default), the exact configuration DP
// (cfgdp), or a deterministic race of both (portfolio).
//
// -family selects the problem family the EPTAS solves: bag-constrained
// scheduling (bags, the default), identical machines without bag
// constraints (identical), or uniformly related machines with few
// distinct speeds (related; the instance JSON carries a "speeds"
// array). The serve subcommand takes no -family flag — the service
// selects the family per request via the "family" field of the solve
// body.
//
// -oracle-workers parallelizes *inside* each oracle solve (speculative
// LP relaxations in bnb, speculative root subtrees in cfgdp). Results
// are bit-identical at any worker count; the knob only trades CPU for
// latency. It composes with -workers (parallelism across batch
// instances), but on a saturated batch pool extra oracle lanes mostly
// add contention.
//
// -timeout bounds the solver's wall-clock time via context cancellation
// (eptas and daswiese; in batch mode the deadline covers the whole
// batch). With -algo eptas, -v additionally prints the per-stage timing,
// cache report and oracle report (chosen/winning backend, per-backend
// work counters) of the pipeline engine.
//
// The instance format is:
//
//	{"machines": 4, "num_bags": 2,
//	 "jobs": [{"id": 0, "size": 0.8, "bag": 0}, ...]}
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	bagsched "repro"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "bagsched serve:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "route" {
		if err := runRoute(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "bagsched route:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "resolve" {
		if err := runResolve(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "bagsched resolve:", err)
			os.Exit(1)
		}
		return
	}
	algo := flag.String("algo", "eptas", "algorithm: eptas, baglpt, lpt, greedy, roundrobin, exact, daswiese")
	eps := flag.Float64("eps", 0.5, "accuracy parameter for eptas/daswiese")
	backendName := flag.String("backend", "bnb", "eptas oracle backend: bnb, cfgdp or portfolio")
	familyName := flag.String("family", "bags", "eptas problem family: bags, identical or related")
	inPath := flag.String("in", "-", "instance JSON file, or - for stdin")
	outPath := flag.String("out", "", "write the schedule JSON here (default: stdout summary only)")
	batchDir := flag.String("batch", "", "solve every instance JSON in this directory on a worker pool")
	workers := flag.Int("workers", 0, "batch worker count (0 = GOMAXPROCS)")
	oracleWorkers := flag.Int("oracle-workers", 0, "concurrent lanes per oracle solve (eptas; <=1 = sequential, results identical)")
	timeout := flag.Duration("timeout", 0, "abort the solve after this long (eptas/daswiese; 0 = no limit)")
	verbose := flag.Bool("v", false, "print per-machine loads (and, for eptas, per-stage timing and cache report)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	backend, err := bagsched.ParseBackend(*backendName)
	if err == nil && backend != bagsched.BackendBnB && *algo != "eptas" {
		err = fmt.Errorf("-backend applies to -algo eptas only (got %q)", *algo)
	}
	if err == nil && *oracleWorkers > 1 && *algo != "eptas" {
		err = fmt.Errorf("-oracle-workers applies to -algo eptas only (got %q)", *algo)
	}
	var fam bagsched.Family
	if err == nil {
		fam, err = bagsched.ParseFamily(*familyName)
		if err == nil && fam.Name() != bagsched.FamilyBags.Name() && *algo != "eptas" {
			err = fmt.Errorf("-family applies to -algo eptas only (got %q)", *algo)
		}
	}
	if err == nil {
		if *batchDir != "" {
			switch {
			case *inPath != "-":
				err = fmt.Errorf("-batch and -in are mutually exclusive")
			case *outPath != "":
				err = fmt.Errorf("-batch writes one schedule per instance; -out does not apply")
			case *verbose:
				err = fmt.Errorf("-v is not supported in batch mode")
			default:
				err = runBatch(ctx, *batchDir, *algo, *eps, backend, fam, *workers, *oracleWorkers)
			}
		} else if *workers != 0 {
			err = fmt.Errorf("-workers applies to batch mode only (use -batch)")
		} else {
			if *timeout > 0 && *algo != "eptas" && *algo != "daswiese" {
				err = fmt.Errorf("-timeout supports -algo eptas or daswiese only (got %q; use -algo exact's own limit instead)", *algo)
			} else {
				err = run(ctx, *algo, *eps, backend, fam, *inPath, *outPath, *oracleWorkers, *verbose)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bagsched:", err)
		os.Exit(1)
	}
}

// runBatch solves every instance JSON in dir concurrently and writes each
// schedule alongside its instance.
func runBatch(ctx context.Context, dir, algo string, eps float64, backend bagsched.OracleBackend, fam bagsched.Family, workers, oracleWorkers int) error {
	if algo != "eptas" {
		return fmt.Errorf("batch mode supports -algo eptas only (got %q)", algo)
	}
	paths, err := batchInputs(dir)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no instance JSONs in %s", dir)
	}
	ins := make([]*sched.Instance, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		ins[i], err = sched.ReadInstance(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}

	pool := bagsched.NewPool(workers)
	start := time.Now()
	outs := pool.SolveEPTASContext(ctx, ins, eps,
		bagsched.WithBackend(backend), bagsched.WithFamily(fam), bagsched.WithOracleWorkers(oracleWorkers))
	elapsed := time.Since(start)

	failed := 0
	for i, o := range outs {
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", paths[i], o.Err)
			continue
		}
		outPath := strings.TrimSuffix(paths[i], ".json") + ".schedule.json"
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		werr := sched.WriteSchedule(f, o.Result.Schedule)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("%s: makespan %.6f (%.2fx lower bound) -> %s\n",
			paths[i], o.Result.Makespan, o.Result.Makespan/o.Result.LowerBound, outPath)
	}
	solved := len(outs) - failed
	effWorkers := pool.Workers()
	if len(ins) < effWorkers {
		effWorkers = len(ins)
	}
	fmt.Printf("solved %d/%d instances in %s on %d workers (%.1f instances/s)\n",
		solved, len(outs), elapsed, effWorkers,
		float64(solved)/elapsed.Seconds())
	if failed > 0 {
		return fmt.Errorf("%d instance(s) failed", failed)
	}
	return nil
}

// batchInputs lists the instance JSONs of dir in sorted order, skipping
// schedule outputs from earlier batch runs. The directory is read
// literally (no glob interpretation), so metacharacters in its name are
// fine.
func batchInputs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".schedule.json") {
			continue
		}
		paths = append(paths, filepath.Join(dir, name))
	}
	sort.Strings(paths)
	return paths, nil
}

func run(ctx context.Context, algo string, eps float64, backend bagsched.OracleBackend, fam bagsched.Family, inPath, outPath string, oracleWorkers int, verbose bool) error {
	var in *sched.Instance
	var err error
	if inPath == "-" {
		in, err = sched.ReadInstance(os.Stdin)
	} else {
		f, ferr := os.Open(inPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		in, err = sched.ReadInstance(f)
	}
	if err != nil {
		return err
	}

	start := time.Now()
	var s *sched.Schedule
	// lb feeds the makespan ratio line; the EPTAS path overrides it with
	// the family-aware bound (the bag bound is invalid on speed
	// instances).
	lb := sched.LowerBound(in)
	switch algo {
	case "eptas":
		res, err := bagsched.SolveEPTASContext(ctx, in, eps,
			bagsched.WithBackend(backend), bagsched.WithFamily(fam), bagsched.WithOracleWorkers(oracleWorkers))
		if err != nil {
			return err
		}
		s = res.Schedule
		lb = res.LowerBound
		fmt.Printf("lower bound: %.6f\n", res.LowerBound)
		fmt.Printf("guesses: %d  patterns: %d  milp nodes: %d  fallback: %v\n",
			res.Stats.Guesses, res.Stats.Patterns, res.Stats.MILPNodes, res.Stats.Fallback)
		fmt.Printf("quality: rung %s  bound %.4g  eps %g\n",
			res.Quality.Rung, res.Quality.Bound, res.Quality.EpsUsed)
		if verbose {
			printEngineReport(res.Stats)
		}
	case "daswiese":
		res, err := bagsched.SolveDasWieseContext(ctx, in, eps)
		if err != nil {
			return err
		}
		s = res.Schedule
	case "baglpt":
		s, err = bagsched.SolveBagLPT(in)
	case "lpt":
		s, err = bagsched.SolveLPT(in)
	case "greedy":
		s, err = bagsched.SolveGreedy(in)
	case "roundrobin":
		s, err = bagsched.SolveRoundRobin(in)
	case "exact":
		res, err := bagsched.SolveExact(in, 0)
		if err != nil {
			return err
		}
		s = res.Schedule
		fmt.Printf("proven optimal: %v  nodes: %d\n", res.Proven, res.Nodes)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if err := s.Validate(); err != nil {
		return fmt.Errorf("produced schedule is invalid: %w", err)
	}
	fmt.Printf("algorithm: %s\n", algo)
	fmt.Printf("machines: %d  jobs: %d  bags: %d\n", in.Machines, len(in.Jobs), in.NumBags)
	fmt.Printf("makespan: %.6f  (%.2fx lower bound)\n", s.Makespan(), s.Makespan()/lb)
	fmt.Printf("elapsed: %s\n", elapsed)
	if verbose {
		for m, load := range s.Loads() {
			fmt.Printf("  machine %2d: load %.6f\n", m, load)
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sched.WriteSchedule(f, s); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", outPath)
	}
	return nil
}

// printEngineReport prints the per-stage timing, cross-guess cache and
// oracle report of one EPTAS solve.
func printEngineReport(st bagsched.Stats) {
	fmt.Printf("pipeline: %d runs over %d guesses\n", st.PipelineRuns, st.Guesses)
	for _, name := range pipeline.StageNames() {
		if d, ok := st.StageTime[name]; ok {
			fmt.Printf("  stage %-11s %12s\n", name, d.Round(time.Microsecond))
		}
	}
	total := st.CacheHits + st.CacheMisses
	if total > 0 {
		fmt.Printf("guess cache: %d hits / %d lookups (%.0f%%)\n",
			st.CacheHits, total, 100*float64(st.CacheHits)/float64(total))
	}
	if st.OracleBackend != "" {
		fmt.Printf("oracle: decided by %s (bnb nodes %d, dp states %d)\n",
			st.OracleBackend, st.MILPNodes, st.DPStates)
		if st.OracleRaces > 0 {
			fmt.Printf("  races: %d won by %s; outraced losers burned %d nodes, %d states, %s\n",
				st.OracleRaces, st.OracleBackend, st.OracleLoserNodes, st.OracleLoserStates,
				st.OracleLoserTime.Round(time.Microsecond))
		}
		if st.OracleWorkers > 1 {
			fmt.Printf("  workers: %d lanes; %d speculative units claimed, %d adopted\n",
				st.OracleWorkers, st.OracleSteals, st.OracleSpecUsed)
		}
	}
}
