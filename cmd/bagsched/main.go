// Command bagsched solves a bag-constrained scheduling instance read from
// a JSON file (or stdin) and prints the schedule and statistics.
//
// Usage:
//
//	bagsched [-algo eptas|baglpt|lpt|greedy|roundrobin|exact|daswiese]
//	         [-eps 0.5] [-in instance.json] [-out schedule.json] [-v]
//
// The instance format is:
//
//	{"machines": 4, "num_bags": 2,
//	 "jobs": [{"id": 0, "size": 0.8, "bag": 0}, ...]}
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	bagsched "repro"
	"repro/internal/sched"
)

func main() {
	algo := flag.String("algo", "eptas", "algorithm: eptas, baglpt, lpt, greedy, roundrobin, exact, daswiese")
	eps := flag.Float64("eps", 0.5, "accuracy parameter for eptas/daswiese")
	inPath := flag.String("in", "-", "instance JSON file, or - for stdin")
	outPath := flag.String("out", "", "write the schedule JSON here (default: stdout summary only)")
	verbose := flag.Bool("v", false, "print per-machine loads")
	flag.Parse()

	if err := run(*algo, *eps, *inPath, *outPath, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "bagsched:", err)
		os.Exit(1)
	}
}

func run(algo string, eps float64, inPath, outPath string, verbose bool) error {
	var in *sched.Instance
	var err error
	if inPath == "-" {
		in, err = sched.ReadInstance(os.Stdin)
	} else {
		f, ferr := os.Open(inPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		in, err = sched.ReadInstance(f)
	}
	if err != nil {
		return err
	}

	start := time.Now()
	var s *sched.Schedule
	switch algo {
	case "eptas":
		res, err := bagsched.SolveEPTAS(in, eps)
		if err != nil {
			return err
		}
		s = res.Schedule
		fmt.Printf("lower bound: %.6f\n", res.LowerBound)
		fmt.Printf("guesses: %d  patterns: %d  milp nodes: %d  fallback: %v\n",
			res.Stats.Guesses, res.Stats.Patterns, res.Stats.MILPNodes, res.Stats.Fallback)
	case "daswiese":
		res, err := bagsched.SolveDasWiese(in, eps)
		if err != nil {
			return err
		}
		s = res.Schedule
	case "baglpt":
		s, err = bagsched.SolveBagLPT(in)
	case "lpt":
		s, err = bagsched.SolveLPT(in)
	case "greedy":
		s, err = bagsched.SolveGreedy(in)
	case "roundrobin":
		s, err = bagsched.SolveRoundRobin(in)
	case "exact":
		res, err := bagsched.SolveExact(in, 0)
		if err != nil {
			return err
		}
		s = res.Schedule
		fmt.Printf("proven optimal: %v  nodes: %d\n", res.Proven, res.Nodes)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if err := s.Validate(); err != nil {
		return fmt.Errorf("produced schedule is invalid: %w", err)
	}
	fmt.Printf("algorithm: %s\n", algo)
	fmt.Printf("machines: %d  jobs: %d  bags: %d\n", in.Machines, len(in.Jobs), in.NumBags)
	fmt.Printf("makespan: %.6f  (%.2fx lower bound)\n", s.Makespan(), s.Makespan()/sched.LowerBound(in))
	fmt.Printf("elapsed: %s\n", elapsed)
	if verbose {
		for m, load := range s.Loads() {
			fmt.Printf("  machine %2d: load %.6f\n", m, load)
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sched.WriteSchedule(f, s); err != nil {
			return err
		}
		fmt.Printf("schedule written to %s\n", outPath)
	}
	return nil
}
