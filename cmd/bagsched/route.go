package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

// runRoute is the `bagsched route` subcommand: the consistent-hash
// shard router fronting N `bagsched serve` replicas. See internal/shard
// for the routing contract.
func runRoute(args []string) error {
	fs := flag.NewFlagSet("route", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bagsched route -replicas URL[,URL...] [flags]\n\n"+
			"Front N bagsched serve replicas with a consistent-hash router:\n"+
			"signature-equivalent solve requests always land on the replica whose\n"+
			"memo cache already holds the entry. Serves the same HTTP surface as a\n"+
			"single replica (POST /v1/solve, POST /v1/batch, GET /v1/stats,\n"+
			"GET /healthz, GET /metrics) plus router counters.\n\n")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", ":8090", "listen address")
	replicas := fs.String("replicas", "", "comma-separated base URLs of the fronted replicas (required)")
	vnodes := fs.Int("vnodes", shard.DefaultVNodes, "virtual nodes per replica on the hash ring")
	policyName := fs.String("policy", "hash", "replica placement: hash (cache-affine) or random (ablation baseline)")
	eps := fs.Float64("eps", server.DefaultEps, "default accuracy mirrored from the replicas (affects routing of knob-less requests only)")
	healthInterval := fs.Duration("health-interval", shard.DefaultHealthInterval, "replica health-check period")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("route takes no positional arguments (got %q)", fs.Args())
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		return errors.New("-replicas is required (comma-separated URLs)")
	}
	policy, err := shard.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	if *eps <= 0 || *eps >= 1 {
		return fmt.Errorf("-eps must be in (0,1), got %g", *eps)
	}

	rt, err := shard.New(shard.Config{
		Replicas:       urls,
		VNodes:         *vnodes,
		Policy:         policy,
		Eps:            *eps,
		HealthInterval: *healthInterval,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("bagsched route: listening on %s fronting %d replicas (policy %s, %d vnodes each)\n",
		*addr, len(urls), policy, *vnodes)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Println("bagsched route: drained")
	return nil
}
