package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	bagsched "repro"
	"repro/internal/server"
)

// runServe is the `bagsched serve` subcommand: the long-running solve
// service with one shared cross-request cache and one admission-
// controlled worker queue. See internal/server for the endpoints.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bagsched serve [flags]\n\n"+
			"Serve POST /v1/solve, POST /v1/batch, GET /v1/stats, GET /healthz and\n"+
			"GET /metrics over HTTP, sharing one bounded guess-memo cache and one\n"+
			"admission-controlled worker pool across all requests.\n\n")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", -1, "max solves waiting beyond -workers (-1 = 4x workers; beyond that requests get 503)")
	cacheBytes := fs.Int64("cache-bytes", server.DefaultCacheBytes, "shared result-cache budget in estimated bytes (0 = unbounded)")
	backendName := fs.String("backend", "bnb", "default oracle backend: bnb, cfgdp or portfolio (requests may override)")
	eps := fs.Float64("eps", server.DefaultEps, "default accuracy parameter in (0,1) (requests may override)")
	maxTimeout := fs.Duration("max-timeout", server.DefaultMaxTimeout, "upper clamp on per-request solve timeouts")
	maxOracleWorkers := fs.Int("max-oracle-workers", 0, "upper clamp on per-request oracle_workers (0 = GOMAXPROCS divided by -workers)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args())
	}
	backend, err := bagsched.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	if *eps <= 0 || *eps >= 1 {
		return fmt.Errorf("-eps must be in (0,1), got %g", *eps)
	}

	cache := bagsched.NewCache(*cacheBytes)
	srv := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		Cache:            cache,
		Eps:              *eps,
		Backend:          backend,
		MaxTimeout:       *maxTimeout,
		MaxOracleWorkers: *maxOracleWorkers,
	})
	srv.PublishExpvar()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let running
	// solves finish (bounded by their own deadlines).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("bagsched serve: listening on %s (workers %d, queue depth %d, cache %d bytes, backend %s, eps %g)\n",
		*addr, srv.Workers(), srv.QueueDepth(), *cacheBytes, backend, *eps)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := cache.Stats()
	fmt.Printf("bagsched serve: drained; cache served %d hits / %d lookups\n", st.Hits, st.Hits+st.Misses)
	return nil
}
