package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	bagsched "repro"
	"repro/internal/server"
)

// runServe is the `bagsched serve` subcommand: the long-running solve
// service with one shared cross-request cache and one admission-
// controlled worker queue. See internal/server for the endpoints.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bagsched serve [flags]\n\n"+
			"Serve POST /v1/solve, POST /v1/batch, GET /v1/stats, GET /healthz and\n"+
			"GET /metrics over HTTP, sharing one bounded guess-memo cache and one\n"+
			"admission-controlled worker pool across all requests.\n\n")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", -1, "max solves waiting beyond -workers (-1 = 4x workers; beyond that requests get 503)")
	cacheBytes := fs.Int64("cache-bytes", server.DefaultCacheBytes, "shared result-cache budget in estimated bytes (0 = unbounded)")
	backendName := fs.String("backend", "bnb", "default oracle backend: bnb, cfgdp or portfolio (requests may override)")
	eps := fs.Float64("eps", server.DefaultEps, "default accuracy parameter in (0,1) (requests may override)")
	maxTimeout := fs.Duration("max-timeout", server.DefaultMaxTimeout, "upper clamp on per-request solve timeouts")
	maxOracleWorkers := fs.Int("max-oracle-workers", 0, "upper clamp on per-request oracle_workers (0 = GOMAXPROCS divided by -workers)")
	snapshotPath := fs.String("snapshot", "", "cache snapshot file: warm-start the cache from it on boot, persist the cache to it on graceful shutdown")
	planSnapshotPath := fs.String("plan-snapshot", "", "planner cost-model snapshot file: warm-start the adaptive planner from it on boot, persist it on graceful shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments (got %q)", fs.Args())
	}
	backend, err := bagsched.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	if *eps <= 0 || *eps >= 1 {
		return fmt.Errorf("-eps must be in (0,1), got %g", *eps)
	}

	cache := bagsched.NewCache(*cacheBytes)
	loaded, skipped, warmed := loadSnapshot(cache, *snapshotPath)
	planner := bagsched.NewPlanModel()
	loadPlanSnapshot(planner, *planSnapshotPath)
	srv := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		Cache:            cache,
		Eps:              *eps,
		Backend:          backend,
		MaxTimeout:       *maxTimeout,
		MaxOracleWorkers: *maxOracleWorkers,
		Planner:          planner,
	})
	srv.PublishExpvar()
	if warmed {
		srv.RecordSnapshot(loaded, skipped)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let running
	// solves finish (bounded by their own deadlines).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("bagsched serve: listening on %s (workers %d, queue depth %d, cache %d bytes, backend %s, eps %g)\n",
		*addr, srv.Workers(), srv.QueueDepth(), *cacheBytes, backend, *eps)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	st := cache.Stats()
	fmt.Printf("bagsched serve: drained; cache served %d hits / %d lookups\n", st.Hits, st.Hits+st.Misses)
	if *snapshotPath != "" {
		if err := saveSnapshot(cache, *snapshotPath); err != nil {
			// Persisting the cache is best-effort: a failed snapshot only
			// costs the next boot its warm start.
			fmt.Fprintf(os.Stderr, "bagsched serve: warning: snapshot not saved: %v\n", err)
		}
	}
	if *planSnapshotPath != "" {
		if err := savePlanSnapshot(planner, *planSnapshotPath); err != nil {
			fmt.Fprintf(os.Stderr, "bagsched serve: warning: plan snapshot not saved: %v\n", err)
		}
	}
	return nil
}

// loadPlanSnapshot warm-starts the planner's cost model from path; like
// the cache snapshot, every failure is a logged skip, never fatal — an
// adaptive planner works (conservatively) from a cold model.
func loadPlanSnapshot(m *bagsched.PlanModel, path string) {
	if path == "" {
		return
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			fmt.Printf("bagsched serve: no plan snapshot at %s, planner starts cold\n", path)
		} else {
			fmt.Fprintf(os.Stderr, "bagsched serve: warning: plan snapshot unreadable, planner starts cold: %v\n", err)
		}
		return
	}
	defer f.Close()
	if err := bagsched.ImportPlanModel(m, f); err != nil {
		fmt.Fprintf(os.Stderr, "bagsched serve: warning: plan snapshot %s skipped, planner starts cold: %v\n", path, err)
		return
	}
	st := m.Snapshot()
	fmt.Printf("bagsched serve: planner warm-started from %s: %d cells, %d observations\n",
		path, st.Cells, st.Observations)
}

// savePlanSnapshot persists the planner's cost model atomically (temp
// file + rename), exactly like the cache snapshot.
func savePlanSnapshot(m *bagsched.PlanModel, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = bagsched.ExportPlanModel(m, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	st := m.Snapshot()
	fmt.Printf("bagsched serve: plan snapshot saved to %s (%d cells)\n", path, st.Cells)
	return nil
}

// loadSnapshot warm-starts cache from path. Every failure — missing
// file, corrupt container, version mismatch — is a logged skip, never
// fatal: a replica must boot (cold) no matter what is on disk. It
// reports what was loaded and whether an import ran at all.
func loadSnapshot(cache *bagsched.Cache, path string) (loaded, skipped int, warmed bool) {
	if path == "" {
		return 0, 0, false
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			fmt.Printf("bagsched serve: no snapshot at %s, starting cold\n", path)
		} else {
			fmt.Fprintf(os.Stderr, "bagsched serve: warning: snapshot unreadable, starting cold: %v\n", err)
		}
		return 0, 0, false
	}
	defer f.Close()
	st, err := bagsched.ImportCacheSnapshot(cache, f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bagsched serve: warning: snapshot %s skipped, starting cold: %v\n", path, err)
		return 0, 0, false
	}
	fmt.Printf("bagsched serve: warm-started from %s: %d entries loaded, %d skipped (%d existing, %d over budget, %d undecodable)\n",
		path, st.Loaded, st.Skipped(), st.SkippedExisting, st.SkippedBudget, st.SkippedDecode)
	return st.Loaded, st.Skipped(), true
}

// saveSnapshot persists cache to path atomically (temp file + rename),
// so a crash mid-write can never leave a truncated snapshot where the
// next boot would find it.
func saveSnapshot(cache *bagsched.Cache, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	written, err := bagsched.ExportCacheSnapshot(cache, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	fmt.Printf("bagsched serve: snapshot saved to %s (%d entries)\n", path, written)
	return nil
}
