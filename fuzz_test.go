package bagsched

// Native fuzz target over the numeric boundary of the EPTAS: random
// (machines, jobs, bags, family, eps) shapes are solved end to end and
// cross-checked for feasibility, lower/upper-bound consistency, the
// Theorem 1 quality bound (against the exact oracle when the instance is
// small enough to prove optimality quickly) and float-vs-fixed-point
// agreement — the fixed-point pipeline must return bit-identical results
// to the retained float64 reference path on every input the fuzzer
// invents, not just the committed corpus.
//
// Run with:
//
//	go test -fuzz FuzzSolveEPTAS -fuzztime 30s .
//
// Without -fuzz the seed corpus below runs as a regular test.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/workload"
)

func FuzzSolveEPTAS(f *testing.F) {
	// Seeds covering every family, both MILP-relevant shapes (few/many
	// bags) and the eps range the quality tests use.
	f.Add(uint8(3), uint8(12), uint8(4), uint8(0), int64(1))
	f.Add(uint8(6), uint8(24), uint8(8), uint8(9), int64(7))
	f.Add(uint8(8), uint8(40), uint8(10), uint8(18), int64(77))
	f.Add(uint8(4), uint8(0), uint8(1), uint8(27), int64(3))
	f.Add(uint8(1), uint8(5), uint8(5), uint8(12), int64(5))
	f.Add(uint8(7), uint8(33), uint8(12), uint8(31), int64(15))

	fams := workload.Families()
	epsTable := []float64{0.75, 0.5, 0.4, 0.33}

	f.Fuzz(func(t *testing.T, m, n, b, sel uint8, seed int64) {
		machines := 1 + int(m%8)
		jobs := int(n % 48)
		bags := 1 + int(b%12)
		fam := fams[int(sel)%len(fams)]
		eps := epsTable[int(sel)/len(fams)%len(epsTable)]
		if eps < 0.4 && jobs > 24 {
			// Small eps on large instances is legitimate but slow (deep
			// pattern spaces, twice, for the float/fixed cross-check);
			// keep a single fuzz input well under the hang detector.
			jobs %= 25
		}

		in, err := workload.Generate(workload.Spec{
			Family: fam, Machines: machines, Jobs: jobs, Bags: bags, Seed: seed,
		})
		if err != nil {
			t.Fatalf("generator rejected a valid spec: %v", err)
		}

		// A tight pattern budget keeps one fuzz input far from the hang
		// detector: guesses whose MILP would be huge are rejected and the
		// solver degrades along its ladder, which is itself a path worth
		// fuzzing. The raised MILP wall-clock backstop makes per-guess
		// outcomes load-independent (node budgets bind), so the float and
		// fixed paths cannot diverge through timing jitter. Both numeric
		// paths run under identical options, so the cross-checks are
		// unaffected.
		opt := core.Options{
			Eps:          eps,
			Speculate:    1,
			PatternLimit: 1200,
			MILP:         milp.Options{TimeLimit: 30 * time.Second},
		}
		res, err := core.Solve(in, opt)
		if err != nil {
			t.Fatalf("%s m=%d n=%d eps=%g: %v", fam, machines, len(in.Jobs), eps, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("infeasible schedule: %v", err)
		}

		// Bound consistency: any feasible schedule is at least the
		// combinatorial lower bound, and the solver never returns worse
		// than its own bag-LPT fallback.
		lb := LowerBound(in)
		if res.Makespan < lb-1e-9 {
			t.Fatalf("makespan %.12f below lower bound %.12f", res.Makespan, lb)
		}
		ub, err := SolveBagLPT(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > ub.Makespan()+1e-9 {
			t.Fatalf("makespan %.12f above bag-LPT fallback %.12f", res.Makespan, ub.Makespan())
		}

		// Float-vs-fixed-point agreement: bit-identical makespan and
		// schedule on the retained float64 reference path.
		refOpt := opt
		refOpt.Float64Ref = true
		ref, err := core.Solve(in, refOpt)
		if err != nil {
			t.Fatalf("float64 reference path failed where fixed point succeeded: %v", err)
		}
		if ref.Makespan != res.Makespan {
			t.Fatalf("float/fixed divergence: %.17g (float) vs %.17g (fixed)", ref.Makespan, res.Makespan)
		}
		if !reflect.DeepEqual(ref.Schedule.Machine, res.Schedule.Machine) {
			t.Fatal("float/fixed schedules diverge")
		}

		// Theorem 1 (makespan <= (1+O(eps)) * OPT): verifiable only when
		// the exact oracle proves optimality, so restrict to shapes it
		// settles in a moment.
		if len(in.Jobs) <= 10 && machines <= 4 {
			ex, err := SolveExact(in, 2*time.Second)
			if err == nil && ex.Proven {
				if ex.Makespan < lb-1e-9 {
					t.Fatalf("exact optimum %.12f below lower bound %.12f", ex.Makespan, lb)
				}
				if res.Makespan > (1+eps)*ex.Makespan+1e-9 {
					t.Fatalf("ratio %.4f exceeds 1+eps at eps=%g", res.Makespan/ex.Makespan, eps)
				}
			}
		}
	})
}
